"""Servlet registry: named request handlers with state.

"The server consists of servlets that perform various archiving and mining
functions as triggered by client action" (§3).  A servlet is a callable
taking the request dict and returning a response dict; the registry
dispatches on the request's ``servlet`` field, turns exceptions into
error responses (the robustness requirement: a failed request must not
take the server down), and keeps per-servlet counters.

Every error response carries ``error_code`` and ``retryable`` (see
:mod:`repro.errors`) so clients dispatch on codes, never on message text.

Every dispatch is observable: the registry records a request counter, an
error counter, and a latency histogram per servlet
(``server.servlets.*{servlet=name}``) and opens a ``servlet.<name>``
trace span, so the paper's "guaranteed immediate processing" claim for UI
events can actually be checked against numbers.

Batch ingest: the reserved ``batch`` servlet carries a v2 envelope
``{"servlet": "batch", "requests": [...]}``.  :meth:`dispatch_batch`
amortizes one trace span and one latency observation across the whole
batch, routes runs of consecutive same-servlet items through a registered
*batch handler* (which may group-commit storage writes), and isolates
per-item failures — a handler that blows up on a grouped run degrades to
per-item dispatch so one bad item never poisons its neighbours.

Trace propagation: a request (or batch item) may carry a ``traceparent``
field (see :mod:`repro.obs.tracing`).  Dispatch parses it and opens the
servlet span with that remote parent, joining the client's trace; an
absent field means a fresh root (old/v1 clients are unaffected), and a
malformed one yields a typed ``bad_request`` for that request only — a
bad header never drops an item or poisons its neighbours.  In batch
dispatch, per-item spans are opened *only* for items that carry a
context, so the amortized fast path stays amortized for untraced traffic.

Slow-request logging: pass ``slow_request_threshold`` (seconds) and every
single dispatch slower than it emits a ``slow_request`` log record
carrying the request's full span tree.
"""

from __future__ import annotations

import threading
import traceback
from collections.abc import Callable
from typing import Any

from ..errors import (
    CODE_BAD_REQUEST,
    CODE_UNKNOWN_SERVLET,
    ServletError,
    error_payload,
)
from ..obs import (
    Logger,
    MetricsRegistry,
    TraceContext,
    TraceParseError,
    Tracer,
    null_logger,
    null_registry,
    null_tracer,
    parse_traceparent,
)

Handler = Callable[[dict[str, Any]], dict[str, Any]]
BatchHandler = Callable[[list[dict[str, Any]]], list[dict[str, Any]]]

#: Reserved envelope name — not registrable, handled by the registry itself.
BATCH_SERVLET = "batch"


def _error_response(message: str, code: str) -> dict[str, Any]:
    return {
        "status": "error", "error": message,
        "error_code": code, "retryable": False,
    }


class ServletRegistry:
    """Dispatch table from servlet name to handler."""

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        log: Logger | None = None,
        slow_request_threshold: float | None = None,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self._batch_handlers: dict[str, BatchHandler] = {}
        self.requests_served = 0
        self.requests_failed = 0
        self.batches_served = 0
        self._counts: dict[str, int] = {}
        self.metrics = metrics if metrics is not None else null_registry()
        self.tracer = tracer if tracer is not None else null_tracer()
        self.log = log if log is not None else null_logger("servlets")
        self.slow_request_threshold = slow_request_threshold
        self._clock = self.metrics.clock
        # Instrument handles are cached per servlet so the hot path never
        # re-does the registry lookup.
        self._instruments: dict[str, tuple[Any, Any, Any]] = {}
        # Registry lock ("registry" rank in repro.locks.LOCK_ORDER):
        # guards the handler tables, the instrument cache, and the
        # dispatch counters.  Never held while a handler runs — dispatch
        # touches it only for bookkeeping before and after the call.
        self._registry_lock = threading.Lock()
        self._unknown_counter = self.metrics.counter(
            "server.servlets.errors", servlet="<unknown>",
        )

    def register(
        self,
        name: str,
        handler: Handler,
        *,
        batch_handler: BatchHandler | None = None,
    ) -> None:
        """Register *handler* under *name*.

        ``batch_handler`` optionally handles a *list* of requests for this
        servlet in one call (returning one response per request, in order)
        so storage writes can be group-committed; :meth:`dispatch_batch`
        uses it for runs of consecutive same-servlet items and falls back
        to the per-item handler if it fails.
        """
        if name == BATCH_SERVLET:
            raise ServletError(f"servlet name {BATCH_SERVLET!r} is reserved")
        with self._registry_lock:
            if name in self._handlers:
                raise ServletError(f"servlet {name!r} already registered")
            self._handlers[name] = handler
            if batch_handler is not None:
                self._batch_handlers[name] = batch_handler

    def names(self) -> list[str]:
        """Registered servlet names, sorted (excludes the reserved
        ``batch`` envelope, which is not a handler)."""
        with self._registry_lock:
            return sorted(self._handlers)

    def _instruments_for(self, name: str) -> tuple[Any, Any, str]:
        got = self._instruments.get(name)
        if got is None:
            got = self._build_instruments(name)
        return got

    def _build_instruments(self, name: str) -> tuple[Any, Any, str]:
        with self._registry_lock:
            got = self._instruments.get(name)
            if got is not None:
                return got
            latency = self.metrics.histogram(
                "server.servlets.latency", servlet=name)
            # Every dispatch observes latency exactly once, so the request
            # count IS the histogram's sample count — exposed as a pull
            # counter to keep one more increment off the hot path.
            self.metrics.counter_func(
                "server.servlets.requests",
                lambda latency=latency: latency.count,
                servlet=name,
            )
            got = (
                self.metrics.counter("server.servlets.errors", servlet=name),
                latency,
                f"servlet.{name}",   # span name, built once per servlet
            )
            self._instruments[name] = got
            return got

    def _parse_parent(self, request: dict[str, Any]) -> TraceContext | None:
        """Parse the request's ``traceparent`` field; absent ⇒ fresh root.

        Raises :class:`TraceParseError` on malformed values — callers turn
        it into a typed ``bad_request`` for that request alone.
        """
        value = request.get("traceparent")
        if value is None:
            return None
        return parse_traceparent(value)

    def _maybe_log_slow(self, name: str, elapsed: float, span: Any) -> None:
        """Emit the ``slow_request`` record (with the finished span tree)
        for a dispatch slower than ``slow_request_threshold``."""
        threshold = self.slow_request_threshold
        if threshold is None or elapsed < threshold:
            return
        trace_id = getattr(span, "trace_id", "")
        spans = (
            [s.to_payload() for s in self.tracer.trace(trace_id)]
            if trace_id else []
        )
        self.log.warn(
            "slow_request", servlet=name, duration=elapsed,
            threshold=threshold, spans=spans,
        )

    # -- single dispatch ----------------------------------------------------

    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Route a request; never raises — errors become ``status: error``
        responses so one bad request cannot kill the server loop."""
        name = request.get("servlet")
        if name == BATCH_SERVLET:
            return self._dispatch_envelope(request)
        if not isinstance(name, str) or name not in self._handlers:
            with self._registry_lock:
                self.requests_failed += 1
            self._unknown_counter.inc()
            return _error_response(
                f"unknown servlet {name!r}", CODE_UNKNOWN_SERVLET)
        errors, latency, span_name = self._instruments_for(name)
        try:
            parent = self._parse_parent(request)
        except TraceParseError as exc:
            errors.inc()
            with self._registry_lock:
                self.requests_failed += 1
            return error_payload(exc)
        clock = self._clock
        start = clock()
        failure: dict[str, Any] | None = None
        with self.tracer.span(span_name, parent=parent) as span:
            try:
                response = self._handlers[name](request)
            except Exception as exc:  # noqa: BLE001 - servlet isolation boundary
                span.set("status", "error")
                self.log.error(
                    "servlet_error", servlet=name,
                    error=f"{type(exc).__name__}: {exc}",
                )
                failure = {
                    **error_payload(exc),
                    "traceback": traceback.format_exc(limit=5),
                }
        elapsed = clock() - start
        latency.observe(elapsed)
        self._maybe_log_slow(name, elapsed, span)
        if failure is not None:
            errors.inc()
            with self._registry_lock:
                self.requests_failed += 1
            return failure
        with self._registry_lock:
            self.requests_served += 1
            self._counts[name] = self._counts.get(name, 0) + 1
        if "status" not in response:
            # Copy before annotating: handlers may return cached/shared
            # dicts, and mutating those in place corrupts the handler.
            response = {**response, "status": "ok"}
        return response

    # -- batch dispatch -----------------------------------------------------

    def _dispatch_envelope(self, request: dict[str, Any]) -> dict[str, Any]:
        """Unwrap a ``batch`` envelope into :meth:`dispatch_batch`.

        The envelope's ``user_id`` (stamped by the transport from the
        authenticated channel) is propagated onto every item — items never
        speak for a different user than the frame they rode in on.
        """
        items = request.get("requests")
        if not isinstance(items, list):
            with self._registry_lock:
                self.requests_failed += 1
            return _error_response(
                "batch envelope requires a 'requests' list", CODE_BAD_REQUEST)
        user_id = request.get("user_id")
        if user_id is not None:
            items = [
                {**item, "user_id": user_id} if isinstance(item, dict) else item
                for item in items
            ]
        return {"status": "ok", "responses": self.dispatch_batch(items)}

    def dispatch_batch(
        self, requests: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """Dispatch many requests under one span and one latency sample.

        Consecutive items naming the same servlet are handed to that
        servlet's batch handler (if registered) as one group, letting the
        handler amortize storage commits; everything else goes through the
        per-item path.  Item failures are isolated: each bad item yields a
        typed error response in its slot and its neighbours proceed.

        Items carrying a ``traceparent`` get a per-item (or per-group)
        ``servlet.<name>`` span parented to the remote context — joining
        the client's trace — while untraced items keep the fully
        amortized path (no per-item spans).  A malformed traceparent
        yields a typed ``bad_request`` in that item's slot, never a
        dropped item, and is excluded from grouping so it cannot poison a
        group commit.
        """
        errors, latency, _ = self._instruments_for(BATCH_SERVLET)
        clock = self._clock
        start = clock()
        # Per-item trace contexts, resolved up-front: TraceContext, None
        # (absent ⇒ amortized path), or TraceParseError (malformed).
        contexts: list[Any] = []
        for item in requests:
            if isinstance(item, dict) and item.get("traceparent") is not None:
                try:
                    contexts.append(parse_traceparent(item["traceparent"]))
                except TraceParseError as exc:
                    contexts.append(exc)
            else:
                contexts.append(None)
        responses: list[dict[str, Any]] = []
        with self.tracer.span("servlet.batch") as span:
            span.set("items", len(requests))
            i = 0
            while i < len(requests):
                if isinstance(contexts[i], TraceParseError):
                    responses.append(error_payload(contexts[i]))
                    i += 1
                    continue
                item = requests[i]
                name = item.get("servlet") if isinstance(item, dict) else None
                group = [item]
                if isinstance(name, str) and name in self._batch_handlers:
                    while (
                        i + len(group) < len(requests)
                        and isinstance(requests[i + len(group)], dict)
                        and requests[i + len(group)].get("servlet") == name
                        and not isinstance(
                            contexts[i + len(group)], TraceParseError)
                    ):
                        group.append(requests[i + len(group)])
                group_contexts = [
                    c for c in contexts[i:i + len(group)] if c is not None
                ]
                if len(group) > 1 or (
                    isinstance(name, str) and name in self._batch_handlers
                ):
                    if group_contexts:
                        # One span joins the first traced item's trace and
                        # records the rest as links, so every traced item
                        # resolves to this group's span tree.
                        with self.tracer.span(
                            f"servlet.{name}", parent=group_contexts[0],
                        ) as gspan:
                            gspan.set("items", len(group))
                            if len(group_contexts) > 1:
                                gspan.set("links", [
                                    c.trace_id for c in group_contexts[1:]
                                ])
                            responses.extend(
                                self._dispatch_group(name, group))
                    else:
                        responses.extend(self._dispatch_group(name, group))
                elif group_contexts:
                    with self.tracer.span(
                        f"servlet.{name}", parent=group_contexts[0],
                    ):
                        responses.append(self._dispatch_item(item))
                else:
                    responses.append(self._dispatch_item(item))
                i += len(group)
            n_failed = sum(1 for r in responses if r.get("status") != "ok")
            if n_failed:
                span.set("failed", n_failed)
                errors.inc(n_failed)
            with self._registry_lock:
                self.requests_failed += n_failed
                self.requests_served += len(responses) - n_failed
        latency.observe(clock() - start)
        with self._registry_lock:
            self.batches_served += 1
            self._counts[BATCH_SERVLET] = self._counts.get(BATCH_SERVLET, 0) + 1
        return responses

    def _dispatch_group(
        self, name: str, group: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """One batch-handler call for a same-servlet run, with fallback.

        The batch handler is all-or-nothing from the registry's view: it
        must return exactly one response per request.  If it raises (or
        returns the wrong shape), the group is re-dispatched item by item,
        which restores per-item isolation at per-item cost.
        """
        try:
            responses = self._batch_handlers[name](group)
            if len(responses) != len(group):
                raise ServletError(
                    f"batch handler for {name!r} returned {len(responses)} "
                    f"responses for {len(group)} requests"
                )
        except Exception:  # noqa: BLE001 - degrade to per-item isolation
            return [self._dispatch_item(item) for item in group]
        out = []
        for response in responses:
            if "status" not in response:
                response = {**response, "status": "ok"}
            out.append(response)
            if response.get("status") == "ok":
                with self._registry_lock:
                    self._counts[name] = self._counts.get(name, 0) + 1
        return out

    def _dispatch_item(self, request: Any) -> dict[str, Any]:
        """Per-item core of batch dispatch: isolation without per-item
        spans or latency samples (those are amortized at batch level)."""
        if not isinstance(request, dict):
            return _error_response(
                "batch items must be JSON objects", CODE_BAD_REQUEST)
        name = request.get("servlet")
        if name == BATCH_SERVLET:
            return _error_response(
                "batch envelopes cannot nest", CODE_BAD_REQUEST)
        if not isinstance(name, str) or name not in self._handlers:
            self._unknown_counter.inc()
            return _error_response(
                f"unknown servlet {name!r}", CODE_UNKNOWN_SERVLET)
        try:
            response = self._handlers[name](request)
        except Exception as exc:  # noqa: BLE001 - servlet isolation boundary
            return {
                **error_payload(exc),
                "traceback": traceback.format_exc(limit=5),
            }
        if "status" not in response:
            response = {**response, "status": "ok"}
        if response.get("status") == "ok":
            with self._registry_lock:
                self._counts[name] = self._counts.get(name, 0) + 1
        return response

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Dispatch totals: requests served/failed, batch envelopes
        handled, and a per-servlet success count."""
        with self._registry_lock:
            return {
                "served": self.requests_served,
                "failed": self.requests_failed,
                "batches": self.batches_served,
                "by_servlet": dict(self._counts),
            }

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Per-servlet latency percentiles (empty when metrics disabled)."""
        return {
            name: instruments[1].summary()
            for name, instruments in sorted(self._instruments.items())
            if instruments[1].count
        }

    def latency_raw(self) -> dict[str, dict[str, Any]]:
        """Per-servlet raw histogram payloads (bucket counts, mergeable
        bucket-wise across shards — see ``repro.obs.metrics.
        merge_histogram_raw``); empty when metrics are disabled."""
        return {
            name: instruments[1].raw()
            for name, instruments in sorted(self._instruments.items())
            if instruments[1].count
        }

    def servlet_instruments(self) -> dict[str, tuple[Any, Any]]:
        """Per-servlet ``(error_counter, latency_histogram)`` handles for
        servlets that have seen traffic — the SLO layer evaluates these."""
        return {
            name: (instruments[0], instruments[1])
            for name, instruments in sorted(self._instruments.items())
            if instruments[1].count
        }
