"""Servlet registry: named request handlers with state.

"The server consists of servlets that perform various archiving and mining
functions as triggered by client action" (§3).  A servlet is a callable
taking the request dict and returning a response dict; the registry
dispatches on the request's ``servlet`` field, turns exceptions into
error responses (the robustness requirement: a failed request must not
take the server down), and keeps per-servlet counters.
"""

from __future__ import annotations

import traceback
from collections.abc import Callable
from typing import Any

from ..errors import ServletError

Handler = Callable[[dict[str, Any]], dict[str, Any]]


class ServletRegistry:
    """Dispatch table from servlet name to handler."""

    def __init__(self) -> None:
        self._handlers: dict[str, Handler] = {}
        self.requests_served = 0
        self.requests_failed = 0
        self._counts: dict[str, int] = {}

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise ServletError(f"servlet {name!r} already registered")
        self._handlers[name] = handler

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Route a request; never raises — errors become ``status: error``
        responses so one bad request cannot kill the server loop."""
        name = request.get("servlet")
        if not isinstance(name, str) or name not in self._handlers:
            self.requests_failed += 1
            return {"status": "error", "error": f"unknown servlet {name!r}"}
        try:
            response = self._handlers[name](request)
        except Exception as exc:  # noqa: BLE001 - servlet isolation boundary
            self.requests_failed += 1
            return {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=5),
            }
        self.requests_served += 1
        self._counts[name] = self._counts.get(name, 0) + 1
        if "status" not in response:
            response["status"] = "ok"
        return response

    def stats(self) -> dict[str, Any]:
        return {
            "served": self.requests_served,
            "failed": self.requests_failed,
            "by_servlet": dict(self._counts),
        }
