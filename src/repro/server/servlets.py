"""Servlet registry: named request handlers with state.

"The server consists of servlets that perform various archiving and mining
functions as triggered by client action" (§3).  A servlet is a callable
taking the request dict and returning a response dict; the registry
dispatches on the request's ``servlet`` field, turns exceptions into
error responses (the robustness requirement: a failed request must not
take the server down), and keeps per-servlet counters.

Every dispatch is observable: the registry records a request counter, an
error counter, and a latency histogram per servlet
(``server.servlets.*{servlet=name}``) and opens a ``servlet.<name>``
trace span, so the paper's "guaranteed immediate processing" claim for UI
events can actually be checked against numbers.
"""

from __future__ import annotations

import traceback
from collections.abc import Callable
from typing import Any

from ..errors import ServletError
from ..obs import MetricsRegistry, Tracer, null_registry, null_tracer

Handler = Callable[[dict[str, Any]], dict[str, Any]]


class ServletRegistry:
    """Dispatch table from servlet name to handler."""

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self.requests_served = 0
        self.requests_failed = 0
        self._counts: dict[str, int] = {}
        self.metrics = metrics if metrics is not None else null_registry()
        self.tracer = tracer if tracer is not None else null_tracer()
        self._clock = self.metrics.clock
        # Instrument handles are cached per servlet so the hot path never
        # re-does the registry lookup.
        self._instruments: dict[str, tuple[Any, Any, Any]] = {}
        self._unknown_counter = self.metrics.counter(
            "server.servlets.errors", servlet="<unknown>",
        )

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise ServletError(f"servlet {name!r} already registered")
        self._handlers[name] = handler

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def _instruments_for(self, name: str) -> tuple[Any, Any, str]:
        got = self._instruments.get(name)
        if got is None:
            latency = self.metrics.histogram(
                "server.servlets.latency", servlet=name)
            # Every dispatch observes latency exactly once, so the request
            # count IS the histogram's sample count — exposed as a pull
            # counter to keep one more increment off the hot path.
            self.metrics.counter_func(
                "server.servlets.requests",
                lambda latency=latency: latency.count,
                servlet=name,
            )
            got = (
                self.metrics.counter("server.servlets.errors", servlet=name),
                latency,
                f"servlet.{name}",   # span name, built once per servlet
            )
            self._instruments[name] = got
        return got

    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Route a request; never raises — errors become ``status: error``
        responses so one bad request cannot kill the server loop."""
        name = request.get("servlet")
        if not isinstance(name, str) or name not in self._handlers:
            self.requests_failed += 1
            self._unknown_counter.inc()
            return {"status": "error", "error": f"unknown servlet {name!r}"}
        errors, latency, span_name = self._instruments_for(name)
        clock = self._clock
        start = clock()
        with self.tracer.span(span_name) as span:
            try:
                response = self._handlers[name](request)
            except Exception as exc:  # noqa: BLE001 - servlet isolation boundary
                latency.observe(clock() - start)
                errors.inc()
                span.set("status", "error")
                self.requests_failed += 1
                return {
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(limit=5),
                }
        latency.observe(clock() - start)
        self.requests_served += 1
        self._counts[name] = self._counts.get(name, 0) + 1
        if "status" not in response:
            response["status"] = "ok"
        return response

    def stats(self) -> dict[str, Any]:
        return {
            "served": self.requests_served,
            "failed": self.requests_failed,
            "by_servlet": dict(self._counts),
        }

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Per-servlet latency percentiles (empty when metrics disabled)."""
        return {
            name: instruments[1].summary()
            for name, instruments in sorted(self._instruments.items())
            if instruments[1].count
        }
