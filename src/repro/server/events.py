"""Client-to-server event model.

These are the "complex objects" the client and the servlets exchange (§3).
Every user action the paper archives becomes one event: visiting a page,
bookmarking it into a folder, editing the folder tree, correcting the
classifier, or flipping the archive mode.  Events are immutable and carry
the simulation timestamp, so the whole system is replayable and
deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class SurfEvent:
    """Base class: something a user did at a point in time."""

    user_id: str
    at: float  # seconds since simulation epoch


@dataclass(frozen=True)
class VisitEvent(SurfEvent):
    """The user's browser displayed *url* (the tap on the location bar)."""

    url: str
    referrer: str | None = None
    session_id: int = 0
    # Ground-truth annotations from the simulator; the server never reads
    # these, only evaluation code does.
    truth: dict[str, Any] = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class BookmarkEvent(SurfEvent):
    """The user deliberately bookmarked *url* into a folder."""

    url: str
    folder_path: str = ""
    truth: dict[str, Any] = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class FolderCreateEvent(SurfEvent):
    """The user created a folder in the editable folder tab."""

    folder_path: str = ""


@dataclass(frozen=True)
class FolderMoveEvent(SurfEvent):
    """Cut/paste of a URL between folders — the correction gesture of
    Figure 1 ("the user can correct or reinforce the classifier")."""

    url: str
    from_folder: str | None = None
    to_folder: str = ""


@dataclass(frozen=True)
class ArchiveModeEvent(SurfEvent):
    """The user changed how their surfing is archived (off/private/community)."""

    mode: str = "community"


Event = SurfEvent
