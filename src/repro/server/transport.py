"""Client transports: the in-process HTTP tunnel and the socket client.

The client applet serializes every request through the protocol codec
(framing + optional per-user encryption); the 'wire' is either handed
directly to the servlet registry (:class:`HttpTunnelTransport` — tests
exercise the exact encode/decode path a firewalled deployment would,
without sockets) or written to a TCP connection against a
:class:`~repro.server.netserver.MemexSocketServer`
(:class:`SocketTransport`).  Both speak the same bytes, so the applet is
unchanged above the wire.

Both transports are thread-safe: byte counters are lock-protected, and
the socket client serializes frames per connection (one connection per
user, since a connection's cipher key is bound at hello time).
"""

from __future__ import annotations

import copy
import socket
import threading
from typing import Any, Protocol, runtime_checkable

from ..errors import CODE_TIMEOUT, ProtocolError, error_payload
from .netserver import HELLO_KEY
from .protocol import decode_message, encode_message, recv_frame
from .servlets import BATCH_SERVLET, ServletRegistry


@runtime_checkable
class Transport(Protocol):
    """What :class:`~repro.client.applet.MemexApplet` needs from a wire."""

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]: ...

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]: ...

    def set_key(self, user_id: str, key: bytes | None) -> None: ...

    def key_for(self, user_id: str) -> bytes | None: ...


def replicate_envelope_failure(
    envelope: dict[str, Any], count: int,
) -> list[dict[str, Any]]:
    """One *independent* copy of a failed batch envelope per slot.

    Each slot must be deep-copied: the envelope can carry nested mutable
    values (e.g. an error ``detail`` dict), and a caller annotating one
    slot's response must not corrupt its siblings.
    """
    return [copy.deepcopy(envelope) for _ in range(count)]


class HttpTunnelTransport:
    """Byte-level request/response channel to a servlet registry.

    Per-user cipher keys are registered out of band (account setup); a
    request from a user with a key on file MUST be encrypted with it.
    """

    def __init__(self, registry: ServletRegistry) -> None:
        self.registry = registry
        self._keys: dict[str, bytes] = {}
        self.bytes_in = 0
        self.bytes_out = 0
        # Innermost lock (obs level): guards the byte counters only.
        self._obs_lock = threading.Lock()

    def set_key(self, user_id: str, key: bytes | None) -> None:
        if key is None:
            self._keys.pop(user_id, None)
        else:
            self._keys[user_id] = key

    def key_for(self, user_id: str) -> bytes | None:
        return self._keys.get(user_id)

    def _count(self, *, sent: int = 0, received: int = 0) -> None:
        with self._obs_lock:
            self.bytes_out += sent
            self.bytes_in += received

    # -- client side -----------------------------------------------------------

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request as *user_id*; returns the decoded response."""
        key = self._keys.get(user_id)
        wire = encode_message({**payload, "user_id": user_id}, key=key)
        response_bytes = self._serve(wire, user_id)
        self._count(sent=len(wire), received=len(response_bytes))
        return decode_message(response_bytes, key=key)

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """Ship *payloads* as one framed ``batch`` envelope (one encode,
        one decode, one dispatch round trip); returns one response per
        payload, in order.  An envelope-level failure (e.g. a protocol
        error) is replicated into every slot so callers always get a
        response per item."""
        if not payloads:
            return []
        key = self._keys.get(user_id)
        wire = encode_message({
            "servlet": BATCH_SERVLET,
            "user_id": user_id,
            "requests": payloads,
        }, key=key)
        response_bytes = self._serve(wire, user_id)
        self._count(sent=len(wire), received=len(response_bytes))
        envelope = decode_message(response_bytes, key=key)
        if envelope.get("status") != "ok":
            return replicate_envelope_failure(envelope, len(payloads))
        return envelope["responses"]

    # -- server side --------------------------------------------------------------

    def _serve(self, wire: bytes, claimed_user: str) -> bytes:
        key = self._keys.get(claimed_user)
        try:
            request = decode_message(wire, key=key)
        except ProtocolError as exc:
            return encode_message(error_payload(exc), key=key)
        response = self.registry.dispatch(request)
        return encode_message(response, key=key)


class _Connection:
    """One established, hello-bound TCP connection (single user)."""

    __slots__ = ("sock", "key", "lock")

    def __init__(self, sock: socket.socket, key: bytes | None) -> None:
        self.sock = sock
        self.key = key
        self.lock = threading.Lock()   # one request in flight per conn


class SocketTransport:
    """Client for :class:`~repro.server.netserver.MemexSocketServer`.

    Maintains one lazily-opened connection per user (a connection's
    cipher key is fixed at hello time).  Safe for concurrent use from
    many threads: requests on the same user's connection are serialized
    by a per-connection lock; different users proceed in parallel.

    A broken or timed-out connection is dropped from the pool and the
    failure surfaces as a retryable typed :class:`ProtocolError`; the
    next request for that user reconnects.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        response_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self._keys: dict[str, bytes] = {}
        self._conns: dict[str, _Connection] = {}
        self._pool_lock = threading.Lock()   # guards _conns and _keys
        self.bytes_in = 0
        self.bytes_out = 0
        self._obs_lock = threading.Lock()

    # -- keys / lifecycle ----------------------------------------------------

    def set_key(self, user_id: str, key: bytes | None) -> None:
        with self._pool_lock:
            if key is None:
                self._keys.pop(user_id, None)
            else:
                self._keys[user_id] = key
            # The old connection (if any) was bound to the old key.
            stale = self._conns.pop(user_id, None)
        if stale is not None:
            self._discard(stale)

    def key_for(self, user_id: str) -> bytes | None:
        with self._pool_lock:
            return self._keys.get(user_id)

    def close(self) -> None:
        with self._pool_lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            self._discard(conn)

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def _discard(conn: _Connection) -> None:
        try:
            conn.sock.close()
        except OSError:
            pass

    def _count(self, *, sent: int = 0, received: int = 0) -> None:
        with self._obs_lock:
            self.bytes_out += sent
            self.bytes_in += received

    # -- connection management ----------------------------------------------

    def _connection(self, user_id: str) -> _Connection:
        with self._pool_lock:
            conn = self._conns.get(user_id)
            if conn is not None:
                return conn
            key = self._keys.get(user_id)
        conn = self._open(user_id, key)
        with self._pool_lock:
            existing = self._conns.get(user_id)
            if existing is not None:
                # Raced with another thread; keep theirs.
                stale, conn = conn, existing
            else:
                self._conns[user_id] = conn
                stale = None
        if stale is not None:
            self._discard(stale)
        return conn

    def _open(self, user_id: str, key: bytes | None) -> _Connection:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout,
            )
        except OSError as exc:
            raise ProtocolError(
                f"cannot connect to {self.host}:{self.port}: {exc}",
                code=CODE_TIMEOUT,
            ) from exc
        sock.settimeout(self.response_timeout)
        try:
            hello = encode_message({HELLO_KEY: user_id})
            sock.sendall(hello)
            raw = recv_frame(sock.recv)
            if raw is None:
                raise ProtocolError("server closed connection during hello")
            self._count(sent=len(hello), received=len(raw))
            ack = decode_message(raw)
            if ack.get("status") != "ok":
                raise ProtocolError(f"hello rejected: {ack.get('error', ack)}")
            if ack.get("encrypted") and key is None:
                raise ProtocolError(
                    f"server expects encrypted traffic for {user_id!r} "
                    "but no key is registered on this transport"
                )
        except (OSError, ProtocolError):
            sock.close()
            raise
        return _Connection(sock, key)

    def _drop(self, user_id: str, conn: _Connection) -> None:
        with self._pool_lock:
            if self._conns.get(user_id) is conn:
                del self._conns[user_id]
        self._discard(conn)

    # -- request path --------------------------------------------------------

    def _exchange(
        self, user_id: str, payload: dict[str, Any],
    ) -> dict[str, Any]:
        conn = self._connection(user_id)
        wire = encode_message(payload, key=conn.key)
        try:
            with conn.lock:
                conn.sock.sendall(wire)
                raw = recv_frame(conn.sock.recv)
        except socket.timeout:
            self._drop(user_id, conn)
            raise ProtocolError(
                f"timed out after {self.response_timeout}s waiting for response",
                code=CODE_TIMEOUT,
            ) from None
        except OSError as exc:
            # A broken connection surfaces as a retryable typed error; the
            # next request for this user reconnects.
            self._drop(user_id, conn)
            raise ProtocolError(
                f"connection to {self.host}:{self.port} broke: {exc}",
                code=CODE_TIMEOUT,
            ) from exc
        except ProtocolError:
            self._drop(user_id, conn)
            raise
        if raw is None:
            self._drop(user_id, conn)
            raise ProtocolError("server closed connection mid-request")
        self._count(sent=len(wire), received=len(raw))
        return decode_message(raw, key=conn.key)

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request as *user_id*; returns the decoded response."""
        return self._exchange(user_id, {**payload, "user_id": user_id})

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """One framed ``batch`` envelope over the socket; one response
        per payload, envelope-level failures replicated per slot."""
        if not payloads:
            return []
        envelope = self._exchange(user_id, {
            "servlet": BATCH_SERVLET,
            "user_id": user_id,
            "requests": payloads,
        })
        if envelope.get("status") != "ok":
            return replicate_envelope_failure(envelope, len(payloads))
        return envelope["responses"]
