"""In-process transport simulating the HTTP tunnel.

The client applet serializes every request through the protocol codec
(framing + optional per-user encryption) and the 'wire' hands the bytes to
the servlet registry — so tests exercise the exact encode/decode path a
firewalled deployment would, without sockets.
"""

from __future__ import annotations

from typing import Any

from ..errors import ProtocolError
from .protocol import decode_message, encode_message
from .servlets import ServletRegistry


class HttpTunnelTransport:
    """Byte-level request/response channel to a servlet registry.

    Per-user cipher keys are registered out of band (account setup); a
    request from a user with a key on file MUST be encrypted with it.
    """

    def __init__(self, registry: ServletRegistry) -> None:
        self.registry = registry
        self._keys: dict[str, bytes] = {}
        self.bytes_in = 0
        self.bytes_out = 0

    def set_key(self, user_id: str, key: bytes | None) -> None:
        if key is None:
            self._keys.pop(user_id, None)
        else:
            self._keys[user_id] = key

    def key_for(self, user_id: str) -> bytes | None:
        return self._keys.get(user_id)

    # -- client side -----------------------------------------------------------

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request as *user_id*; returns the decoded response."""
        key = self._keys.get(user_id)
        wire = encode_message({**payload, "user_id": user_id}, key=key)
        self.bytes_out += len(wire)
        response_bytes = self._serve(wire, user_id)
        self.bytes_in += len(response_bytes)
        return decode_message(response_bytes, key=key)

    # -- server side --------------------------------------------------------------

    def _serve(self, wire: bytes, claimed_user: str) -> bytes:
        key = self._keys.get(claimed_user)
        try:
            request = decode_message(wire, key=key)
        except ProtocolError as exc:
            return encode_message(
                {"status": "error", "error": str(exc)}, key=key,
            )
        response = self.registry.dispatch(request)
        return encode_message(response, key=key)
