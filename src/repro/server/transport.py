"""In-process transport simulating the HTTP tunnel.

The client applet serializes every request through the protocol codec
(framing + optional per-user encryption) and the 'wire' hands the bytes to
the servlet registry — so tests exercise the exact encode/decode path a
firewalled deployment would, without sockets.
"""

from __future__ import annotations

from typing import Any

from ..errors import ProtocolError, error_payload
from .protocol import decode_message, encode_message
from .servlets import BATCH_SERVLET, ServletRegistry


class HttpTunnelTransport:
    """Byte-level request/response channel to a servlet registry.

    Per-user cipher keys are registered out of band (account setup); a
    request from a user with a key on file MUST be encrypted with it.
    """

    def __init__(self, registry: ServletRegistry) -> None:
        self.registry = registry
        self._keys: dict[str, bytes] = {}
        self.bytes_in = 0
        self.bytes_out = 0

    def set_key(self, user_id: str, key: bytes | None) -> None:
        if key is None:
            self._keys.pop(user_id, None)
        else:
            self._keys[user_id] = key

    def key_for(self, user_id: str) -> bytes | None:
        return self._keys.get(user_id)

    # -- client side -----------------------------------------------------------

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request as *user_id*; returns the decoded response."""
        key = self._keys.get(user_id)
        wire = encode_message({**payload, "user_id": user_id}, key=key)
        self.bytes_out += len(wire)
        response_bytes = self._serve(wire, user_id)
        self.bytes_in += len(response_bytes)
        return decode_message(response_bytes, key=key)

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """Ship *payloads* as one framed ``batch`` envelope (one encode,
        one decode, one dispatch round trip); returns one response per
        payload, in order.  An envelope-level failure (e.g. a protocol
        error) is replicated into every slot so callers always get a
        response per item."""
        if not payloads:
            return []
        key = self._keys.get(user_id)
        wire = encode_message({
            "servlet": BATCH_SERVLET,
            "user_id": user_id,
            "requests": payloads,
        }, key=key)
        self.bytes_out += len(wire)
        response_bytes = self._serve(wire, user_id)
        self.bytes_in += len(response_bytes)
        envelope = decode_message(response_bytes, key=key)
        if envelope.get("status") != "ok":
            return [dict(envelope) for _ in payloads]
        return envelope["responses"]

    # -- server side --------------------------------------------------------------

    def _serve(self, wire: bytes, claimed_user: str) -> bytes:
        key = self._keys.get(claimed_user)
        try:
            request = decode_message(wire, key=key)
        except ProtocolError as exc:
            return encode_message(error_payload(exc), key=key)
        response = self.registry.dispatch(request)
        return encode_message(response, key=key)
