"""Client transports: the in-process HTTP tunnel and the socket client.

The client applet serializes every request through the protocol codec
(framing + optional per-user encryption); the 'wire' is either handed
directly to the servlet registry (:class:`HttpTunnelTransport` — tests
exercise the exact encode/decode path a firewalled deployment would,
without sockets) or written to a TCP connection against a
:class:`~repro.server.netserver.MemexSocketServer`
(:class:`SocketTransport`).  Both speak the same bytes, so the applet is
unchanged above the wire.

Both transports are thread-safe: byte counters are lock-protected, and
the socket client serializes frames per connection (one connection per
user, since a connection's cipher key is bound at hello time).
"""

from __future__ import annotations

import copy
import random
import socket
import threading
import time
from typing import Any, Protocol, runtime_checkable

from ..errors import CODE_TIMEOUT, CODE_UNAVAILABLE, ProtocolError, error_payload
from .netserver import Dispatcher, HELLO_KEY
from .protocol import decode_message, encode_message, recv_frame
from .servlets import BATCH_SERVLET, ServletRegistry


@runtime_checkable
class Transport(Protocol):
    """What :class:`~repro.client.applet.MemexApplet` needs from a wire."""

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]: ...

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]: ...

    def set_key(self, user_id: str, key: bytes | None) -> None: ...

    def key_for(self, user_id: str) -> bytes | None: ...


def replicate_envelope_failure(
    envelope: dict[str, Any], count: int,
) -> list[dict[str, Any]]:
    """One *independent* copy of a failed batch envelope per slot.

    Each slot must be deep-copied: the envelope can carry nested mutable
    values (e.g. an error ``detail`` dict), and a caller annotating one
    slot's response must not corrupt its siblings.
    """
    return [copy.deepcopy(envelope) for _ in range(count)]


class HttpTunnelTransport:
    """Byte-level request/response channel to a servlet registry.

    Per-user cipher keys are registered out of band (account setup); a
    request from a user with a key on file MUST be encrypted with it.

    ``dispatcher`` overrides where decoded requests land: the single-
    process server passes its :class:`~repro.shard.gather.
    ShardDispatcher` (over one local backend) so in-process dispatch and
    the shard router share one routing code path.  Without it, requests
    go straight to the registry (the pre-sharding behaviour).
    """

    def __init__(
        self,
        registry: ServletRegistry,
        *,
        dispatcher: Dispatcher | None = None,
    ) -> None:
        self.registry = registry
        self._dispatch = (
            dispatcher.dispatch if dispatcher is not None
            else registry.dispatch
        )
        self._keys: dict[str, bytes] = {}
        self.bytes_in = 0
        self.bytes_out = 0
        # Innermost lock (obs level): guards the byte counters only.
        self._obs_lock = threading.Lock()

    def set_key(self, user_id: str, key: bytes | None) -> None:
        if key is None:
            self._keys.pop(user_id, None)
        else:
            self._keys[user_id] = key

    def key_for(self, user_id: str) -> bytes | None:
        return self._keys.get(user_id)

    def _count(self, *, sent: int = 0, received: int = 0) -> None:
        with self._obs_lock:
            self.bytes_out += sent
            self.bytes_in += received

    # -- client side -----------------------------------------------------------

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request as *user_id*; returns the decoded response."""
        key = self._keys.get(user_id)
        wire = encode_message({**payload, "user_id": user_id}, key=key)
        response_bytes = self._serve(wire, user_id)
        self._count(sent=len(wire), received=len(response_bytes))
        return decode_message(response_bytes, key=key)

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """Ship *payloads* as one framed ``batch`` envelope (one encode,
        one decode, one dispatch round trip); returns one response per
        payload, in order.  An envelope-level failure (e.g. a protocol
        error) is replicated into every slot so callers always get a
        response per item."""
        if not payloads:
            return []
        key = self._keys.get(user_id)
        wire = encode_message({
            "servlet": BATCH_SERVLET,
            "user_id": user_id,
            "requests": payloads,
        }, key=key)
        response_bytes = self._serve(wire, user_id)
        self._count(sent=len(wire), received=len(response_bytes))
        envelope = decode_message(response_bytes, key=key)
        if envelope.get("status") != "ok":
            return replicate_envelope_failure(envelope, len(payloads))
        return envelope["responses"]

    # -- server side --------------------------------------------------------------

    def _serve(self, wire: bytes, claimed_user: str) -> bytes:
        key = self._keys.get(claimed_user)
        try:
            request = decode_message(wire, key=key)
        except ProtocolError as exc:
            return encode_message(error_payload(exc), key=key)
        response = self._dispatch(request)
        return encode_message(response, key=key)


class _Connection:
    """One established, hello-bound TCP connection (single user)."""

    __slots__ = ("sock", "key", "lock")

    def __init__(self, sock: socket.socket, key: bytes | None) -> None:
        self.sock = sock
        self.key = key
        self.lock = threading.Lock()   # one request in flight per conn


class SocketTransport:
    """Client for :class:`~repro.server.netserver.MemexSocketServer`.

    Maintains one lazily-opened connection per user (a connection's
    cipher key is fixed at hello time).  Safe for concurrent use from
    many threads: requests on the same user's connection are serialized
    by a per-connection lock; different users proceed in parallel.

    A broken or timed-out connection is dropped from the pool and the
    failure surfaces as a retryable typed :class:`ProtocolError`; the
    next request for that user reconnects.

    **Reconnect backoff.**  When the backend itself is down, every
    request used to burn a fresh TCP connect attempt — a tight reconnect
    loop that hammers a restarting server.  Connect *failures* (refused,
    unreachable, connect timeout) now arm a capped exponential backoff
    with jitter, shared across users (it is the same dead endpoint):
    until it expires, requests fail fast with a retryable
    ``unavailable`` error and **no** connection attempt.  A successful
    TCP connect disarms it.  Mid-request connection breaks do NOT arm
    backoff — the endpoint accepted the connection, so the immediate
    reconnect-on-next-request behaviour is preserved.

    **Pool cap** (``max_pooled=N``).  One connection per user is fine
    for a handful of applets, but an open-loop load generator speaks
    for hundreds of scheduled users through one transport and would
    otherwise hold one socket (and one server worker thread) per user
    ever seen.  With ``max_pooled=N`` the pool becomes an LRU: opening
    a connection beyond the cap evicts the least-recently-used *idle*
    connection (one whose per-connection lock is not held — an in-
    flight request is never cut).  The next request for an evicted user
    transparently reconnects.

    **Multiplex mode** (``multiplex=N``, internal hops only).  The
    per-user connection exists to bind a cipher key at hello time; on a
    trusted *cleartext* hop — the router's links to its shard workers —
    it only wastes server worker threads, which are held one per open
    connection.  With ``multiplex=N`` the transport instead keeps at
    most N connections, hello-bound to synthetic slot users
    (``__mux__0``..), and round-robins requests across them; every
    payload still carries the real ``user_id``, which the shard worker
    trusts because it does not run with ``authoritative_user``.  Do NOT
    multiplex a client-facing transport: per-user cipher keys are
    ignored on the hop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        response_timeout: float = 30.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_rng: random.Random | None = None,
        multiplex: int = 0,
        multiplex_label: str = "__mux__",
        max_pooled: int = 0,
    ) -> None:
        if multiplex < 0:
            raise ValueError("multiplex must be >= 0")
        if max_pooled < 0:
            raise ValueError("max_pooled must be >= 0 (0 = unbounded)")
        self.max_pooled = max_pooled
        self.host = host
        self.port = port
        self.multiplex = multiplex
        self.multiplex_label = multiplex_label
        self._mux_next = 0
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._backoff_rng = backoff_rng if backoff_rng is not None else random.Random()
        self._backoff_failures = 0
        self._backoff_until = 0.0     # monotonic deadline; 0 = disarmed
        self._keys: dict[str, bytes] = {}
        self._conns: dict[str, _Connection] = {}
        # Guards _conns, _keys, and the backoff state.
        self._pool_lock = threading.Lock()
        self.bytes_in = 0
        self.bytes_out = 0
        self._obs_lock = threading.Lock()

    # -- keys / lifecycle ----------------------------------------------------

    def set_key(self, user_id: str, key: bytes | None) -> None:
        with self._pool_lock:
            if key is None:
                self._keys.pop(user_id, None)
            else:
                self._keys[user_id] = key
            # The old connection (if any) was bound to the old key.
            stale = self._conns.pop(user_id, None)
        if stale is not None:
            self._discard(stale)

    def key_for(self, user_id: str) -> bytes | None:
        with self._pool_lock:
            return self._keys.get(user_id)

    def close(self) -> None:
        with self._pool_lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            self._discard(conn)

    def reset_backoff(self) -> None:
        """Disarm the reconnect backoff (e.g. the supervisor knows the
        backend just restarted and is accepting again)."""
        with self._pool_lock:
            self._backoff_failures = 0
            self._backoff_until = 0.0

    def set_address(self, host: str, port: int) -> None:
        """Re-point this transport at a (re)started backend: drops every
        pooled connection and disarms the backoff."""
        with self._pool_lock:
            self.host = host
            self.port = port
            self._backoff_failures = 0
            self._backoff_until = 0.0
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            self._discard(conn)

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def _discard(conn: _Connection) -> None:
        try:
            conn.sock.close()
        except OSError:
            pass

    def _count(self, *, sent: int = 0, received: int = 0) -> None:
        with self._obs_lock:
            self.bytes_out += sent
            self.bytes_in += received

    # -- connection management ----------------------------------------------

    def _connection(self, user_id: str) -> _Connection:
        with self._pool_lock:
            conn = self._conns.get(user_id)
            if conn is not None:
                if self.max_pooled:
                    # LRU recency: move the hit to the back of the dict.
                    self._conns[user_id] = self._conns.pop(user_id)
                return conn
            key = self._keys.get(user_id)
        conn = self._open(user_id, key)
        evicted: list[_Connection] = []
        with self._pool_lock:
            existing = self._conns.get(user_id)
            if existing is not None:
                # Raced with another thread; keep theirs.
                stale, conn = conn, existing
            else:
                self._conns[user_id] = conn
                stale = None
                evicted = self._evict_over_cap(keep=user_id)
        if stale is not None:
            self._discard(stale)
        for old in evicted:
            self._discard(old)
        return conn

    def _evict_over_cap(self, *, keep: str) -> list[_Connection]:
        """Called under ``_pool_lock``: shrink the pool to ``max_pooled``
        by dropping least-recently-used connections, skipping *keep*
        (just inserted for the active request) and any connection whose
        lock is held (a request is in flight on it)."""
        if not self.max_pooled:
            return []
        evicted: list[_Connection] = []
        for uid in list(self._conns):
            if len(self._conns) <= self.max_pooled:
                break
            if uid == keep:
                continue
            conn = self._conns[uid]
            if conn.lock.locked():
                continue
            del self._conns[uid]
            evicted.append(conn)
        return evicted

    def drop_connections(self, *, half_close: bool = False) -> int:
        """Chaos hook: sever every pooled connection, returning how many
        were hit.  With ``half_close=True`` the sockets' write sides are
        shut down but the connections stay pooled — the server sees EOF
        and hangs up, and the next request on each poisoned connection
        fails retryably and reconnects.  With the default full close the
        pool is emptied outright (in-flight requests on those sockets
        surface retryable errors)."""
        with self._pool_lock:
            conns = dict(self._conns)
            if not half_close:
                self._conns.clear()
        for conn in conns.values():
            if half_close:
                try:
                    conn.sock.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
            else:
                self._discard(conn)
        return len(conns)

    def _open(self, user_id: str, key: bytes | None) -> _Connection:
        with self._pool_lock:
            suppressed_until = self._backoff_until
        if self._backoff_failures and time.monotonic() < suppressed_until:
            # Fail fast without touching the socket: the endpoint was
            # down moments ago and the backoff window has not expired.
            raise ProtocolError(
                f"backend {self.host}:{self.port} is down; retrying after "
                "backoff",
                code=CODE_UNAVAILABLE,
            )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout,
            )
        except OSError as exc:
            with self._pool_lock:
                self._backoff_failures += 1
                delay = min(
                    self.backoff_cap,
                    self.backoff_base * 2 ** (self._backoff_failures - 1),
                ) * (0.5 + 0.5 * self._backoff_rng.random())
                self._backoff_until = time.monotonic() + delay
            raise ProtocolError(
                f"cannot connect to {self.host}:{self.port}: {exc}",
                code=CODE_TIMEOUT,
            ) from exc
        with self._pool_lock:
            # The endpoint is accepting again: disarm the backoff.
            self._backoff_failures = 0
            self._backoff_until = 0.0
        sock.settimeout(self.response_timeout)
        try:
            hello = encode_message({HELLO_KEY: user_id})
            sock.sendall(hello)
            raw = recv_frame(sock.recv)
            if raw is None:
                raise ProtocolError("server closed connection during hello")
            self._count(sent=len(hello), received=len(raw))
            ack = decode_message(raw)
            if ack.get("status") != "ok":
                raise ProtocolError(f"hello rejected: {ack.get('error', ack)}")
            if ack.get("encrypted") and key is None:
                raise ProtocolError(
                    f"server expects encrypted traffic for {user_id!r} "
                    "but no key is registered on this transport"
                )
        except (OSError, ProtocolError):
            sock.close()
            raise
        return _Connection(sock, key)

    def _drop(self, user_id: str, conn: _Connection) -> None:
        with self._pool_lock:
            if self._conns.get(user_id) is conn:
                del self._conns[user_id]
        self._discard(conn)

    # -- request path --------------------------------------------------------

    def _conn_user(self, user_id: str) -> str:
        """The hello identity a request travels under: the user itself,
        or (multiplex mode) the next round-robin slot user."""
        if not self.multiplex:
            return user_id
        with self._pool_lock:
            slot = self._mux_next
            self._mux_next = (slot + 1) % self.multiplex
        return f"{self.multiplex_label}{slot}"

    def _exchange(
        self, user_id: str, payload: dict[str, Any],
    ) -> dict[str, Any]:
        conn = self._connection(user_id)
        wire = encode_message(payload, key=conn.key)
        try:
            with conn.lock:
                conn.sock.sendall(wire)
                raw = recv_frame(conn.sock.recv)
        except socket.timeout:
            self._drop(user_id, conn)
            raise ProtocolError(
                f"timed out after {self.response_timeout}s waiting for response",
                code=CODE_TIMEOUT,
            ) from None
        except OSError as exc:
            # A broken connection surfaces as a retryable typed error; the
            # next request for this user reconnects.
            self._drop(user_id, conn)
            raise ProtocolError(
                f"connection to {self.host}:{self.port} broke: {exc}",
                code=CODE_TIMEOUT,
            ) from exc
        except ProtocolError:
            self._drop(user_id, conn)
            raise
        if raw is None:
            self._drop(user_id, conn)
            raise ProtocolError("server closed connection mid-request")
        self._count(sent=len(wire), received=len(raw))
        return decode_message(raw, key=conn.key)

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request as *user_id*; returns the decoded response."""
        return self._exchange(self._conn_user(user_id),
                              {**payload, "user_id": user_id})

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """One framed ``batch`` envelope over the socket; one response
        per payload, envelope-level failures replicated per slot."""
        if not payloads:
            return []
        envelope = self._exchange(self._conn_user(user_id), {
            "servlet": BATCH_SERVLET,
            "user_id": user_id,
            "requests": payloads,
        })
        if envelope.get("status") != "ok":
            return replicate_envelope_failure(envelope, len(payloads))
        return envelope["responses"]
