"""Server substrate: events, protocol, transport, servlets, daemons."""

from .daemons import (
    ClassifierDaemon,
    CrawlerDaemon,
    DiscoveryDaemon,
    FetchedPage,
    IndexerDaemon,
    PageVectorizer,
    Resource,
    ThemeDaemon,
    link_graph,
)
from .events import (
    ArchiveModeEvent,
    BookmarkEvent,
    Event,
    FolderCreateEvent,
    FolderMoveEvent,
    SurfEvent,
    VisitEvent,
)
from .protocol import decode_message, encode_message, rc4_stream
from .scheduler import Daemon, DaemonScheduler
from .servlets import Handler, ServletRegistry
from .transport import HttpTunnelTransport

__all__ = [
    "ArchiveModeEvent",
    "BookmarkEvent",
    "ClassifierDaemon",
    "CrawlerDaemon",
    "Daemon",
    "DaemonScheduler",
    "DiscoveryDaemon",
    "Event",
    "FetchedPage",
    "FolderCreateEvent",
    "FolderMoveEvent",
    "Handler",
    "HttpTunnelTransport",
    "IndexerDaemon",
    "PageVectorizer",
    "Resource",
    "ServletRegistry",
    "SurfEvent",
    "ThemeDaemon",
    "VisitEvent",
    "decode_message",
    "encode_message",
    "link_graph",
    "rc4_stream",
]
