"""The enhanced classifier: text + hyperlink + folder-placement evidence.

§4: "For classification we use a new technique that combines features from
text, hyperlink and folder placement to offer significantly boosted
accuracy, increasing from a mere 40% accuracy for text-only learners to
about 80% with our more elaborate model."

Three evidence channels, each producing a log-distribution over the user's
folder classes, combined log-linearly:

**Text** — the naive-Bayes posterior of :mod:`.naive_bayes`.

**Hyperlink** — pages link to same-topic pages far more often than chance
(topic locality), so the labels of a page's graph neighborhood are
evidence: labeled in/out-neighbors vote directly, co-cited pages (sharing
an in-link source) vote at half strength.  Unlabeled neighbors participate
through *relaxation labeling*: a first pass classifies every test page,
later passes let neighbors' current soft labels reinforce each other
(Chakrabarti-Dom-Indyk style).

**Folder placement** — if this URL was co-placed with other URLs in
*anyone's* folder (the community's collective filing), the known classes of
its co-placed companions are evidence.  This is the channel that rescues
"functional" bookmarks whose text is unrelated to the folder topic.

**Co-visitation** (optional fourth channel) — pages surfed in the same
session as this URL vote with their labels, weighted by the decayed
co-occurrence count from the ``covisits`` matrix
(:mod:`repro.retrieval.covisit`).  Surfers surf topic-locally, so trail
adjacency is label evidence even when text and links are silent.  A URL
with no co-visitation evidence contributes nothing — the channel is
numerically absent, not a uniform vote — so fits without trail data
reproduce the three-channel model exactly.

Channel weights and on/off switches are exposed for the E1 ablation.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable

import networkx as nx

from ..errors import NotFitted
from ..text.vectorize import SparseVector
from .naive_bayes import NaiveBayesClassifier


def _log_normalize(scores: dict[str, float]) -> dict[str, float]:
    peak = max(scores.values())
    logz = peak + math.log(sum(math.exp(v - peak) for v in scores.values()))
    return {c: v - logz for c, v in scores.items()}


def _vote_distribution(
    votes: dict[str, float], classes: list[str], alpha: float = 0.5
) -> dict[str, float]:
    """Smoothed log-distribution from weighted class votes."""
    total = sum(votes.values())
    denom = total + alpha * len(classes)
    return {
        c: math.log((votes.get(c, 0.0) + alpha) / denom) for c in classes
    }


class EnhancedClassifier:
    """Combined text / hyperlink / folder-placement classifier.

    Parameters
    ----------
    use_text, use_links, use_folder:
        Channel switches (the E1 ablation grid).
    text_weight, link_weight, folder_weight:
        Log-linear mixing weights.
    relaxation_rounds:
        Extra rounds in :meth:`predict_batch` where unlabeled neighbors'
        current soft labels feed back as link evidence.
    """

    def __init__(
        self,
        *,
        use_text: bool = True,
        use_links: bool = True,
        use_folder: bool = True,
        use_covisit: bool = True,
        text_weight: float = 1.0,
        link_weight: float = 1.5,
        folder_weight: float = 2.0,
        cocitation_weight: float = 0.5,
        covisit_weight: float = 0.75,
        relaxation_rounds: int = 2,
        smoothing: float = 0.1,
        feature_budget: int | None = None,
    ) -> None:
        if not (use_text or use_links or use_folder):
            raise ValueError("at least one evidence channel must be enabled")
        self.use_text = use_text
        self.use_links = use_links
        self.use_folder = use_folder
        self.use_covisit = use_covisit
        self.text_weight = text_weight
        self.link_weight = link_weight
        self.folder_weight = folder_weight
        self.cocitation_weight = cocitation_weight
        self.covisit_weight = covisit_weight
        self.relaxation_rounds = relaxation_rounds
        self._nb = NaiveBayesClassifier(
            smoothing=smoothing, feature_budget=feature_budget,
        )
        self._labels: dict[str, str] = {}
        self._classes: list[str] = []
        self._graph: nx.DiGraph | None = None
        self._cociters: dict[str, set[str]] = {}
        self._coplacement: dict[str, set[str]] = {}
        self._covisitation: dict[str, list[tuple[str, float]]] = {}
        self._fitted = False

    # -- training --------------------------------------------------------------

    def fit(
        self,
        vectors: dict[str, SparseVector],
        labels: dict[str, str],
        graph: nx.DiGraph,
        coplacement: dict[str, set[str]] | None = None,
        covisitation: dict[str, list[tuple[str, float]]] | None = None,
    ) -> "EnhancedClassifier":
        """Train on labeled documents.

        ``vectors`` maps url -> term-count vector for the *labeled* docs;
        ``graph`` is the hyperlink graph (may contain many more urls);
        ``coplacement`` maps url -> set of urls filed in the same folder by
        any community member (built by
        :func:`build_coplacement` from folder contents);
        ``covisitation`` maps url -> ``[(co-visited url, decayed count),
        ...]`` from the co-visitation matrix (the trail channel; omit to
        train the classic three-channel model).
        """
        if not labels:
            raise NotFitted("no labeled documents")
        missing = set(labels) - set(vectors)
        if missing:
            raise ValueError(f"labels without vectors: {sorted(missing)[:3]}...")
        docs = [vectors[url] for url in labels]
        self._nb.fit(docs, [labels[url] for url in labels])
        self._labels = dict(labels)
        self._classes = self._nb.classes
        self._graph = graph
        self._coplacement = coplacement or {}
        self._covisitation = covisitation or {}
        self._cociters = _cocitation_map(graph, set(labels)) if self.use_links else {}
        self._fitted = True
        return self

    # -- evidence channels ---------------------------------------------------------

    def _text_evidence(self, vec: SparseVector) -> dict[str, float]:
        return self._nb.log_posteriors(vec)

    def _link_evidence(
        self,
        url: str,
        soft: dict[str, dict[str, float]] | None = None,
    ) -> dict[str, float]:
        assert self._graph is not None
        votes: dict[str, float] = defaultdict(float)
        if url in self._graph:
            neighbors: Iterable[str] = set(self._graph.successors(url)) | set(
                self._graph.predecessors(url)
            )
            for nb in neighbors:
                label = self._labels.get(nb)
                if label is not None:
                    votes[label] += 1.0
                elif soft is not None and nb in soft:
                    for c, p in soft[nb].items():
                        votes[c] += p
        for cociter in self._cociters.get(url, ()):
            label = self._labels.get(cociter)
            if label is not None:
                votes[label] += self.cocitation_weight
        return _vote_distribution(votes, self._classes)

    def _folder_evidence(self, url: str) -> dict[str, float]:
        votes: dict[str, float] = defaultdict(float)
        for companion in self._coplacement.get(url, ()):
            label = self._labels.get(companion)
            if label is not None:
                votes[label] += 1.0
        return _vote_distribution(votes, self._classes)

    def _covisit_votes(self, url: str) -> dict[str, float]:
        """Labeled trail companions vote, log-damped so one heavily
        reinforced pair cannot drown the rest of the evidence."""
        votes: dict[str, float] = defaultdict(float)
        for companion, count in self._covisitation.get(url, ()):
            label = self._labels.get(companion)
            if label is not None and count > 0.0:
                votes[label] += math.log1p(count)
        return dict(votes)

    def _combine(
        self,
        url: str,
        vec: SparseVector,
        soft: dict[str, dict[str, float]] | None = None,
    ) -> dict[str, float]:
        combined = {c: 0.0 for c in self._classes}
        if self.use_text:
            text = self._text_evidence(vec)
            for c in combined:
                combined[c] += self.text_weight * text[c]
        if self.use_links:
            link = self._link_evidence(url, soft)
            for c in combined:
                combined[c] += self.link_weight * link[c]
        if self.use_folder:
            folder = self._folder_evidence(url)
            for c in combined:
                combined[c] += self.folder_weight * folder[c]
        if self.use_covisit and self._covisitation:
            votes = self._covisit_votes(url)
            # Only vote when there IS evidence: an empty channel must
            # leave the three-channel posterior bit-identical, not merely
            # proportionally equal after a uniform shift.
            if votes:
                covisit = _vote_distribution(votes, self._classes)
                for c in combined:
                    combined[c] += self.covisit_weight * covisit[c]
        return _log_normalize(combined)

    # -- inference -------------------------------------------------------------------

    def log_posteriors(self, url: str, vec: SparseVector) -> dict[str, float]:
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        return self._combine(url, vec)

    def predict(self, url: str, vec: SparseVector) -> tuple[str, float]:
        post = self.log_posteriors(url, vec)
        best = max(post, key=lambda c: (post[c], c))
        return best, math.exp(post[best])

    def predict_batch(
        self,
        vectors: dict[str, SparseVector],
    ) -> dict[str, tuple[str, float]]:
        """Classify a batch jointly with relaxation labeling.

        Round 0 scores each page independently; subsequent rounds feed the
        batch's current soft labels back through the link channel so
        unlabeled neighborhoods reinforce each other.
        """
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        soft: dict[str, dict[str, float]] = {}
        for url, vec in vectors.items():
            post = self._combine(url, vec)
            soft[url] = {c: math.exp(v) for c, v in post.items()}
        if self.use_links:
            for _ in range(self.relaxation_rounds):
                updated: dict[str, dict[str, float]] = {}
                for url, vec in vectors.items():
                    others = {u: p for u, p in soft.items() if u != url}
                    post = self._combine(url, vec, others)
                    updated[url] = {c: math.exp(v) for c, v in post.items()}
                soft = updated
        out: dict[str, tuple[str, float]] = {}
        for url, dist in soft.items():
            best = max(dist, key=lambda c: (dist[c], c))
            out[url] = (best, dist[best])
        return out

    @property
    def classes(self) -> list[str]:
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        return list(self._classes)

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (the link graph itself is NOT
        serialized — pass it again to :meth:`from_dict`, it lives in the
        catalog's links table)."""
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        return {
            "flags": {
                "use_text": self.use_text,
                "use_links": self.use_links,
                "use_folder": self.use_folder,
                "use_covisit": self.use_covisit,
            },
            "weights": {
                "text": self.text_weight,
                "link": self.link_weight,
                "folder": self.folder_weight,
                "cocitation": self.cocitation_weight,
                "covisit": self.covisit_weight,
            },
            "relaxation_rounds": self.relaxation_rounds,
            "nb": self._nb.to_dict(),
            "labels": self._labels,
            "coplacement": {u: sorted(vs) for u, vs in self._coplacement.items()},
            "covisitation": {
                u: [[v, c] for v, c in pairs]
                for u, pairs in self._covisitation.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict, graph: nx.DiGraph) -> "EnhancedClassifier":
        flags = payload["flags"]
        weights = payload["weights"]
        clf = cls(
            use_text=flags["use_text"],
            use_links=flags["use_links"],
            use_folder=flags["use_folder"],
            # .get defaults keep snapshots from before the co-visitation
            # channel restorable (restore_models replays old payloads).
            use_covisit=flags.get("use_covisit", True),
            text_weight=weights["text"],
            link_weight=weights["link"],
            folder_weight=weights["folder"],
            cocitation_weight=weights["cocitation"],
            covisit_weight=weights.get("covisit", 0.75),
            relaxation_rounds=payload["relaxation_rounds"],
        )
        clf._nb = NaiveBayesClassifier.from_dict(payload["nb"])
        clf._labels = dict(payload["labels"])
        clf._classes = clf._nb.classes
        clf._graph = graph
        clf._coplacement = {
            u: set(vs) for u, vs in payload["coplacement"].items()
        }
        clf._covisitation = {
            u: [(v, float(c)) for v, c in pairs]
            for u, pairs in payload.get("covisitation", {}).items()
        }
        clf._cociters = (
            _cocitation_map(graph, set(clf._labels)) if clf.use_links else {}
        )
        clf._fitted = True
        return clf


def _cocitation_map(
    graph: nx.DiGraph, labeled: set[str]
) -> dict[str, set[str]]:
    """url -> labeled urls sharing at least one in-link source with it."""
    out: dict[str, set[str]] = defaultdict(set)
    for hub in graph.nodes():
        cited = list(graph.successors(hub))
        if len(cited) < 2:
            continue
        cited_labeled = [u for u in cited if u in labeled]
        if not cited_labeled:
            continue
        for u in cited:
            for v in cited_labeled:
                if u != v:
                    out[u].add(v)
    return dict(out)


def build_coplacement(folders: Iterable[Iterable[str]]) -> dict[str, set[str]]:
    """Build the co-placement map from folder contents.

    *folders* iterates over collections of URLs, one per (user, folder)
    pair across the whole community.  Two URLs appearing in the same
    collection become companions.
    """
    out: dict[str, set[str]] = defaultdict(set)
    for members in folders:
        members = list(dict.fromkeys(members))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                out[u].add(v)
                out[v].add(u)
    return dict(out)
