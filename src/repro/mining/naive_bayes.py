"""Multinomial naive Bayes text classifier.

"For classification we started with a Bayesian classifier [3]" (§4).
This is the text-only learner whose ~40 % accuracy on bookmark corpora
motivates the enhanced classifier; it is also the text component *inside*
that enhanced model, so its posteriors must be well-calibrated enough to
mix with link and folder evidence (we return log-posteriors, not argmax).
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..errors import NotFitted
from ..text.vectorize import SparseVector
from .features import project, select_features


class NaiveBayesClassifier:
    """Multinomial NB with Laplace smoothing and optional Fisher feature
    selection.

    Documents are sparse term-count vectors; labels are folder paths.
    """

    def __init__(
        self,
        *,
        smoothing: float = 0.1,
        feature_budget: int | None = None,
    ) -> None:
        self.smoothing = smoothing
        self.feature_budget = feature_budget
        self._classes: list[str] = []
        self._prior: dict[str, float] = {}
        self._term_logprob: dict[str, dict[int, float]] = {}
        self._default_logprob: dict[str, float] = {}
        self._features: set[int] | None = None
        self._fitted = False

    # -- training --------------------------------------------------------------

    def fit(
        self,
        docs: list[SparseVector],
        labels: list[str],
    ) -> "NaiveBayesClassifier":
        if not docs:
            raise NotFitted("cannot fit naive Bayes on zero documents")
        if len(docs) != len(labels):
            raise ValueError("docs and labels must align")
        if self.feature_budget is not None:
            self._features = select_features(docs, labels, budget=self.feature_budget)
            docs = [project(d, self._features) for d in docs]

        by_class: dict[str, list[SparseVector]] = defaultdict(list)
        for vec, label in zip(docs, labels):
            by_class[label].append(vec)
        self._classes = sorted(by_class)

        vocab: set[int] = set()
        for vec in docs:
            vocab.update(vec)
        vocab_size = max(len(vocab), 1)

        n_total = len(docs)
        self._prior = {
            c: math.log(len(members) / n_total) for c, members in by_class.items()
        }
        self._term_logprob = {}
        self._default_logprob = {}
        for c, members in by_class.items():
            counts: dict[int, float] = defaultdict(float)
            total = 0.0
            for vec in members:
                for term, tf in vec.items():
                    counts[term] += tf
                    total += tf
            denom = total + self.smoothing * vocab_size
            self._term_logprob[c] = {
                term: math.log((tf + self.smoothing) / denom)
                for term, tf in counts.items()
            }
            self._default_logprob[c] = math.log(self.smoothing / denom)
        self._fitted = True
        return self

    # -- inference ------------------------------------------------------------------

    def log_posteriors(self, doc: SparseVector) -> dict[str, float]:
        """Normalized log P(class | doc) for every class."""
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        if self._features is not None:
            doc = project(doc, self._features)
        joint: dict[str, float] = {}
        for c in self._classes:
            score = self._prior[c]
            table = self._term_logprob[c]
            default = self._default_logprob[c]
            for term, tf in doc.items():
                score += tf * table.get(term, default)
            joint[c] = score
        # Log-normalize for calibrated mixing with other evidence.
        peak = max(joint.values())
        logz = peak + math.log(sum(math.exp(v - peak) for v in joint.values()))
        return {c: v - logz for c, v in joint.items()}

    def posteriors(self, doc: SparseVector) -> dict[str, float]:
        return {c: math.exp(v) for c, v in self.log_posteriors(doc).items()}

    def predict(self, doc: SparseVector) -> tuple[str, float]:
        """``(best class, posterior probability)``."""
        post = self.log_posteriors(doc)
        best = max(post, key=lambda c: (post[c], c))
        return best, math.exp(post[best])

    @property
    def classes(self) -> list[str]:
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        return list(self._classes)

    # -- persistence --------------------------------------------------------------------

    def to_dict(self) -> dict:
        if not self._fitted:
            raise NotFitted("classifier has not been fitted")
        return {
            "smoothing": self.smoothing,
            "feature_budget": self.feature_budget,
            "classes": self._classes,
            "prior": self._prior,
            "term_logprob": {
                c: {str(t): p for t, p in table.items()}
                for c, table in self._term_logprob.items()
            },
            "default_logprob": self._default_logprob,
            "features": sorted(self._features) if self._features is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NaiveBayesClassifier":
        clf = cls(
            smoothing=payload["smoothing"],
            feature_budget=payload["feature_budget"],
        )
        clf._classes = list(payload["classes"])
        clf._prior = dict(payload["prior"])
        clf._term_logprob = {
            c: {int(t): p for t, p in table.items()}
            for c, table in payload["term_logprob"].items()
        }
        clf._default_logprob = dict(payload["default_logprob"])
        features = payload["features"]
        clf._features = set(features) if features is not None else None
        clf._fitted = True
        return clf
