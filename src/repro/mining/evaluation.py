"""Evaluation utilities: accuracy, F1, cross-validation, cluster quality.

Shared by the tests and by every benchmark in ``benchmarks/`` so that
EXPERIMENTS.md numbers all come from one implementation.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from collections.abc import Callable, Sequence
from dataclasses import dataclass


# ---------------------------------------------------------------------------
# Classification metrics
# ---------------------------------------------------------------------------

def accuracy(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    if len(y_true) != len(y_pred):
        raise ValueError("length mismatch")
    if not y_true:
        return 0.0
    return sum(1 for t, p in zip(y_true, y_pred) if t == p) / len(y_true)


def confusion_matrix(
    y_true: Sequence[str], y_pred: Sequence[str]
) -> dict[tuple[str, str], int]:
    """``{(true, pred): count}``."""
    matrix: dict[tuple[str, str], int] = defaultdict(int)
    for t, p in zip(y_true, y_pred):
        matrix[(t, p)] += 1
    return dict(matrix)


def macro_f1(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    """Unweighted mean of per-class F1 scores."""
    classes = sorted(set(y_true) | set(y_pred))
    if not classes:
        return 0.0
    f1s = []
    for c in classes:
        tp = sum(1 for t, p in zip(y_true, y_pred) if t == c and p == c)
        fp = sum(1 for t, p in zip(y_true, y_pred) if t != c and p == c)
        fn = sum(1 for t, p in zip(y_true, y_pred) if t == c and p != c)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        f1s.append(f1)
    return sum(f1s) / len(f1s)


@dataclass
class CVResult:
    """Per-fold and aggregate cross-validation scores."""

    fold_scores: list[float]

    @property
    def mean(self) -> float:
        return sum(self.fold_scores) / len(self.fold_scores)

    @property
    def std(self) -> float:
        m = self.mean
        return math.sqrt(sum((s - m) ** 2 for s in self.fold_scores) / len(self.fold_scores))


def stratified_folds(
    labels: Sequence[str], k: int, rng: random.Random
) -> list[list[int]]:
    """Split indices into k folds, preserving label proportions."""
    if k < 2:
        raise ValueError("k must be >= 2")
    by_class: dict[str, list[int]] = defaultdict(list)
    for i, label in enumerate(labels):
        by_class[label].append(i)
    folds: list[list[int]] = [[] for _ in range(k)]
    for members in by_class.values():
        members = list(members)
        rng.shuffle(members)
        for j, idx in enumerate(members):
            folds[j % k].append(idx)
    return [sorted(f) for f in folds]


def cross_validate(
    labels: Sequence[str],
    evaluate_fold: Callable[[list[int], list[int]], float],
    *,
    k: int = 5,
    seed: int = 0,
) -> CVResult:
    """Generic stratified k-fold CV.

    *evaluate_fold(train_idx, test_idx)* trains and returns a score.
    """
    rng = random.Random(seed)
    folds = stratified_folds(labels, k, rng)
    scores: list[float] = []
    for i, test_idx in enumerate(folds):
        if not test_idx:
            continue
        train_idx = [j for f_i, fold in enumerate(folds) if f_i != i for j in fold]
        scores.append(evaluate_fold(train_idx, test_idx))
    return CVResult(fold_scores=scores)


# ---------------------------------------------------------------------------
# Clustering metrics
# ---------------------------------------------------------------------------

def purity(clusters: list[list[int]], labels: Sequence[str]) -> float:
    """Fraction of points in their cluster's majority class."""
    total = sum(len(c) for c in clusters)
    if total == 0:
        return 0.0
    correct = 0
    for members in clusters:
        counts = Counter(labels[i] for i in members)
        if counts:
            correct += counts.most_common(1)[0][1]
    return correct / total


def normalized_mutual_information(
    clusters: list[list[int]], labels: Sequence[str]
) -> float:
    """NMI between the clustering and the ground-truth labelling."""
    n = sum(len(c) for c in clusters)
    if n == 0:
        return 0.0
    class_counts = Counter(labels[i] for members in clusters for i in members)
    mi = 0.0
    for members in clusters:
        if not members:
            continue
        joint = Counter(labels[i] for i in members)
        for label, count in joint.items():
            p_joint = count / n
            p_cluster = len(members) / n
            p_class = class_counts[label] / n
            mi += p_joint * math.log(p_joint / (p_cluster * p_class))
    h_cluster = -sum(
        (len(m) / n) * math.log(len(m) / n) for m in clusters if m
    )
    h_class = -sum(
        (c / n) * math.log(c / n) for c in class_counts.values()
    )
    if h_cluster == 0.0 or h_class == 0.0:
        return 1.0 if h_cluster == h_class else 0.0
    return mi / math.sqrt(h_cluster * h_class)


# ---------------------------------------------------------------------------
# Ranking metrics (resource discovery, search, recommendation)
# ---------------------------------------------------------------------------

def precision_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    if k <= 0:
        raise ValueError("k must be positive")
    top = list(ranked)[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / len(top)


def recall_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    if not relevant:
        return 0.0
    top = list(ranked)[:k]
    return sum(1 for item in top if item in relevant) / len(relevant)


def mean_reciprocal_rank(
    rankings: Sequence[Sequence[str]], relevants: Sequence[set[str]]
) -> float:
    """MRR across queries."""
    if not rankings:
        return 0.0
    total = 0.0
    for ranked, relevant in zip(rankings, relevants):
        for rank, item in enumerate(ranked, start=1):
            if item in relevant:
                total += 1.0 / rank
                break
    return total / len(rankings)
