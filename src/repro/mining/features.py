"""Fisher-index feature selection.

Reference [3] of the paper (Chakrabarti, Dom, Agrawal, Raghavan, VLDB
Journal 1998) selects discriminating terms with the Fisher index: the
ratio of between-class to within-class scatter of a term's relative
frequency.  Terms that appear uniformly across folders score near zero;
terms concentrated in one folder score high.  Both classifiers accept a
feature budget and train on the top-scoring terms only — an ablation
benchmark measures what this buys.
"""

from __future__ import annotations

from collections import defaultdict

from ..text.vectorize import SparseVector


def fisher_scores(
    docs: list[SparseVector],
    labels: list[str],
) -> dict[int, float]:
    """Fisher discriminant score per term id.

    For term t with per-class mean relative frequencies mu_c and global
    mean mu: ``sum_c n_c (mu_c - mu)^2  /  (sum_c sum_{d in c} (f_dt -
    mu_c)^2 + eps)``.
    """
    if len(docs) != len(labels):
        raise ValueError("docs and labels must align")
    # Relative frequencies per doc.
    rel: list[SparseVector] = []
    for vec in docs:
        total = sum(vec.values()) or 1.0
        rel.append({t: v / total for t, v in vec.items()})

    by_class: dict[str, list[SparseVector]] = defaultdict(list)
    for vec, label in zip(rel, labels):
        by_class[label].append(vec)

    terms: set[int] = set()
    for vec in rel:
        terms.update(vec)

    n_total = len(rel)
    scores: dict[int, float] = {}
    eps = 1e-9
    for term in terms:
        global_mean = sum(vec.get(term, 0.0) for vec in rel) / n_total
        between = 0.0
        within = 0.0
        for members in by_class.values():
            n_c = len(members)
            mu_c = sum(vec.get(term, 0.0) for vec in members) / n_c
            between += n_c * (mu_c - global_mean) ** 2
            within += sum((vec.get(term, 0.0) - mu_c) ** 2 for vec in members)
        scores[term] = between / (within + eps)
    return scores


def select_features(
    docs: list[SparseVector],
    labels: list[str],
    *,
    budget: int,
) -> set[int]:
    """Ids of the *budget* highest-Fisher-score terms."""
    scores = fisher_scores(docs, labels)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return {term for term, _ in ranked[:budget]}


def project(vec: SparseVector, feature_set: set[int]) -> SparseVector:
    """Restrict a vector to the selected features."""
    return {t: v for t, v in vec.items() if t in feature_set}
