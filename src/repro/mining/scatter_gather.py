"""Scatter/Gather browsing (Cutting, Karger, Pedersen — reference [6]).

Memex "uses unsupervised clustering to propose a topic hierarchy over a
set of links that the user may want to reorganize" (§2).  The constant
interaction-time trick from the paper's reference: cluster a random
O(sqrt(kn)) sample with (quadratic) HAC — *buckshot* — then sweep the rest
of the corpus into the nearest centroid and refine with a few k-means
iterations.  A :class:`ScatterGatherSession` supports the interactive
loop: scatter into k clusters, let the user gather a subset, re-scatter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import EmptyCorpus
from ..text.vectorize import SparseVector, centroid, cosine, normalize
from .hac import cluster_vectors


@dataclass
class Cluster:
    """One proposed cluster over document indices."""

    members: list[int]
    center: SparseVector

    def __len__(self) -> int:
        return len(self.members)


def buckshot(
    vectors: list[SparseVector],
    k: int,
    rng: random.Random,
    *,
    refine_iterations: int = 3,
) -> list[Cluster]:
    """Buckshot clustering into *k* clusters.

    Seeds come from group-average HAC on a sample of size
    ``min(n, ceil(sqrt(k*n)) * 3)``; assignment and refinement are
    centroid-based (cosine).
    """
    n = len(vectors)
    if n == 0:
        raise EmptyCorpus("cannot cluster zero documents")
    k = min(k, n)
    units = [normalize(v) for v in vectors]
    sample_size = min(n, max(k, 3 * math.ceil(math.sqrt(k * n))))
    sample = rng.sample(range(n), sample_size)
    seed_groups = cluster_vectors([units[i] for i in sample], k)
    centers = [centroid([units[sample[i]] for i in group]) for group in seed_groups]

    assignment = _assign_all(units, centers)
    for _ in range(refine_iterations):
        centers = [
            centroid([units[i] for i in members]) if members else centers[ci]
            for ci, members in enumerate(assignment)
        ]
        new_assignment = _assign_all(units, centers)
        if new_assignment == assignment:
            break
        assignment = new_assignment

    return [
        Cluster(members=members, center=centers[ci])
        for ci, members in enumerate(assignment)
    ]


def _assign_all(
    units: list[SparseVector], centers: list[SparseVector]
) -> list[list[int]]:
    assignment: list[list[int]] = [[] for _ in centers]
    for i, vec in enumerate(units):
        best_c = 0
        best_s = -1.0
        for ci, center in enumerate(centers):
            s = cosine(vec, center)
            if s > best_s:
                best_s = s
                best_c = ci
        assignment[best_c].append(i)
    return assignment


class ScatterGatherSession:
    """Interactive scatter/gather over a fixed document collection.

    The user repeatedly *scatters* the working set into k clusters, then
    *gathers* the interesting clusters into a new working set — drilling
    into a corpus without queries.  Memex offers this over a folder's
    unorganized links.
    """

    def __init__(
        self,
        vectors: list[SparseVector],
        *,
        seed: int = 0,
    ) -> None:
        if not vectors:
            raise EmptyCorpus("cannot browse zero documents")
        self._vectors = vectors
        self._rng = random.Random(seed)
        self._working: list[int] = list(range(len(vectors)))
        self._clusters: list[Cluster] = []
        self.history: list[list[int]] = []

    @property
    def working_set(self) -> list[int]:
        return list(self._working)

    @property
    def clusters(self) -> list[Cluster]:
        return list(self._clusters)

    def scatter(self, k: int) -> list[Cluster]:
        """Cluster the current working set into (up to) k clusters."""
        subset = [self._vectors[i] for i in self._working]
        local = buckshot(subset, k, self._rng)
        self._clusters = [
            Cluster(
                members=[self._working[j] for j in c.members],
                center=c.center,
            )
            for c in local
            if c.members
        ]
        return self.clusters

    def gather(self, cluster_indices: list[int]) -> list[int]:
        """Focus on the union of the chosen clusters; returns new working set."""
        if not self._clusters:
            raise EmptyCorpus("scatter before gathering")
        chosen: list[int] = []
        for ci in cluster_indices:
            chosen.extend(self._clusters[ci].members)
        if not chosen:
            raise EmptyCorpus("gathered an empty selection")
        self.history.append(self._working)
        self._working = sorted(set(chosen))
        self._clusters = []
        return self.working_set

    def back(self) -> list[int]:
        """Undo the last gather."""
        if self.history:
            self._working = self.history.pop()
            self._clusters = []
        return self.working_set
