"""Bottom-up hierarchical agglomerative clustering.

"For clustering we started with a bottom-up hierarchical agglomerative
approach [6]" (§4).  Group-average linkage over cosine similarity of
TF-IDF vectors, returning a full dendrogram that callers can cut at k
clusters or at a similarity threshold.  Single and complete linkage are
included for the linkage ablation bench.

The group-average implementation maintains per-cluster *sum* vectors of the
unit-normalized members, exploiting the identity that the average pairwise
cosine between clusters A and B equals ``S_A . S_B / (|A| |B|)`` — so each
candidate merge costs one sparse dot product, and a lazy-deletion heap
gives O(n^2 log n) overall.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..errors import EmptyCorpus
from ..text.vectorize import SparseVector, add, cosine, normalize


@dataclass
class Dendrogram:
    """Result of a full agglomeration.

    ``merges`` is the sequence of (left, right, new, similarity) cluster
    ids; leaves are ids ``0..n-1`` in input order.
    """

    n_leaves: int
    merges: list[tuple[int, int, int, float]] = field(default_factory=list)

    def cut(self, k: int) -> list[list[int]]:
        """Cut into *k* clusters; returns lists of leaf indices."""
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, self.n_leaves)
        members: dict[int, list[int]] = {i: [i] for i in range(self.n_leaves)}
        stop = self.n_leaves - k  # number of merges to apply
        for left, right, new, _ in self.merges[:stop]:
            members[new] = members.pop(left) + members.pop(right)
        return sorted(members.values(), key=lambda m: m[0])

    def cut_at_similarity(self, threshold: float) -> list[list[int]]:
        """Apply only merges at similarity >= threshold."""
        members: dict[int, list[int]] = {i: [i] for i in range(self.n_leaves)}
        for left, right, new, sim in self.merges:
            if sim < threshold:
                break
            members[new] = members.pop(left) + members.pop(right)
        return sorted(members.values(), key=lambda m: m[0])


def hac(
    vectors: list[SparseVector],
    *,
    linkage: str = "group-average",
) -> Dendrogram:
    """Agglomerate *vectors* all the way to one cluster."""
    if linkage not in ("group-average", "single", "complete"):
        raise ValueError(f"unknown linkage {linkage!r}")
    n = len(vectors)
    if n == 0:
        raise EmptyCorpus("cannot cluster zero documents")
    dendro = Dendrogram(n_leaves=n)
    if n == 1:
        return dendro
    if linkage == "group-average":
        _hac_group_average(vectors, dendro)
    else:
        _hac_pairwise(vectors, dendro, linkage)
    return dendro


def _hac_group_average(vectors: list[SparseVector], dendro: Dendrogram) -> None:
    n = len(vectors)
    units = [normalize(v) for v in vectors]
    sums: dict[int, SparseVector] = {i: dict(units[i]) for i in range(n)}
    sizes: dict[int, int] = {i: 1 for i in range(n)}
    alive: set[int] = set(range(n))
    next_id = itertools.count(n)

    def avg_sim(a: int, b: int) -> float:
        na, nb = sizes[a], sizes[b]
        cross = 0.0
        sa, sb = sums[a], sums[b]
        if len(sa) > len(sb):
            sa, sb = sb, sa
        for t, w in sa.items():
            if t in sb:
                cross += w * sb[t]
        return cross / (na * nb)

    heap: list[tuple[float, int, int]] = []
    ids = sorted(alive)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            heapq.heappush(heap, (-avg_sim(a, b), a, b))

    while len(alive) > 1:
        while True:
            negsim, a, b = heapq.heappop(heap)
            if a in alive and b in alive:
                break
        new = next(next_id)
        alive.discard(a)
        alive.discard(b)
        sums[new] = add(sums[a], sums[b])
        sizes[new] = sizes[a] + sizes[b]
        dendro.merges.append((a, b, new, -negsim))
        for other in alive:
            heapq.heappush(heap, (-avg_sim(new, other), other, new))
        alive.add(new)
        del sums[a], sums[b]


def _hac_pairwise(
    vectors: list[SparseVector], dendro: Dendrogram, linkage: str
) -> None:
    n = len(vectors)
    units = [normalize(v) for v in vectors]
    sim: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            sim[(i, j)] = cosine(units[i], units[j])

    def get(a: int, b: int) -> float:
        return sim[(a, b) if a < b else (b, a)]

    alive: set[int] = set(range(n))
    next_id = itertools.count(n)
    combine = max if linkage == "single" else min

    while len(alive) > 1:
        best: tuple[float, int, int] | None = None
        for a in alive:
            for b in alive:
                if a < b:
                    s = get(a, b)
                    if best is None or s > best[0]:
                        best = (s, a, b)
        assert best is not None
        s, a, b = best
        new = next(next_id)
        alive.discard(a)
        alive.discard(b)
        for other in alive:
            sim[(other, new) if other < new else (new, other)] = combine(
                get(a, other), get(b, other)
            )
        dendro.merges.append((a, b, new, s))
        alive.add(new)


def cluster_vectors(
    vectors: list[SparseVector],
    k: int,
    *,
    linkage: str = "group-average",
) -> list[list[int]]:
    """Convenience: agglomerate and cut into *k* clusters of leaf indices."""
    return hac(vectors, linkage=linkage).cut(k)
