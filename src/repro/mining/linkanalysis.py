"""Hyperlink analysis: HITS hubs/authorities and a PageRank variant.

The motivating query "are there any popular sites ... ?" (§1) and the
resource-discovery daemon's "authoritative sources" (§4) need a notion of
link-endorsed popularity.  This module supplies the two classics of the
paper's era and research lineage:

* **HITS** (Kleinberg 1998) on a focused subgraph — exactly how
  Chakrabarti et al.'s earlier systems scored topical authority;
* **PageRank** with damping, for a query-independent score.

Both operate on plain ``networkx`` digraphs, so they apply equally to the
full crawl graph and to a trail-tab neighborhood.
"""

from __future__ import annotations

import math

import networkx as nx


def hits(
    graph: nx.DiGraph,
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> tuple[dict[str, float], dict[str, float]]:
    """Hub and authority scores, L2-normalized, via power iteration.

    Returns ``(hubs, authorities)``.  Isolated nodes get score 0.  An
    empty graph returns two empty dicts.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}, {}
    hubs = {n: 1.0 for n in nodes}
    auths = {n: 1.0 for n in nodes}
    for _ in range(max_iterations):
        new_auths = {
            n: sum(hubs[p] for p in graph.predecessors(n)) for n in nodes
        }
        _l2_normalize(new_auths)
        new_hubs = {
            n: sum(new_auths[s] for s in graph.successors(n)) for n in nodes
        }
        _l2_normalize(new_hubs)
        delta = sum(abs(new_auths[n] - auths[n]) for n in nodes) + sum(
            abs(new_hubs[n] - hubs[n]) for n in nodes
        )
        hubs, auths = new_hubs, new_auths
        if delta < tolerance:
            break
    return hubs, auths


def _l2_normalize(scores: dict[str, float]) -> None:
    norm = math.sqrt(sum(v * v for v in scores.values()))
    if norm > 0:
        for k in scores:
            scores[k] /= norm


def pagerank(
    graph: nx.DiGraph,
    *,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    personalization: dict[str, float] | None = None,
) -> dict[str, float]:
    """PageRank by power iteration; scores sum to 1.

    ``personalization`` biases the teleport vector (used for topical
    'popularity near my trail': teleport to the trail's pages).
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    if personalization:
        total = sum(personalization.values())
        if total <= 0:
            raise ValueError("personalization weights must sum > 0")
        teleport = {node: personalization.get(node, 0.0) / total for node in nodes}
    else:
        teleport = {node: 1.0 / n for node in nodes}
    rank = dict(teleport)
    out_degree = {node: graph.out_degree(node) for node in nodes}
    for _ in range(max_iterations):
        sink_mass = sum(rank[node] for node in nodes if out_degree[node] == 0)
        new_rank = {}
        for node in nodes:
            incoming = sum(
                rank[p] / out_degree[p] for p in graph.predecessors(node)
            )
            new_rank[node] = (
                (1.0 - damping) * teleport[node]
                + damping * (incoming + sink_mass * teleport[node])
            )
        delta = sum(abs(new_rank[node] - rank[node]) for node in nodes)
        rank = new_rank
        if delta < tolerance:
            break
    return rank


def popular_near(
    graph: nx.DiGraph,
    seed_urls: set[str],
    *,
    k: int = 10,
    hops: int = 1,
) -> list[tuple[str, float]]:
    """'Popular pages in or near' a seed set (§1's community-trail query).

    Builds the *hops*-neighborhood of the seeds (both link directions),
    runs HITS on it, and returns the top-k by authority.
    """
    present = {u for u in seed_urls if u in graph}
    if not present:
        return []
    frontier = set(present)
    neighborhood = set(present)
    for _ in range(hops):
        nxt: set[str] = set()
        for url in frontier:
            nxt.update(graph.successors(url))
            nxt.update(graph.predecessors(url))
        nxt -= neighborhood
        neighborhood |= nxt
        frontier = nxt
    sub = graph.subgraph(neighborhood)
    _, auths = hits(nx.DiGraph(sub))
    ranked = sorted(auths.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]
