"""Mining algorithms: classification, clustering, theme discovery, metrics."""

from .evaluation import (
    CVResult,
    accuracy,
    confusion_matrix,
    cross_validate,
    macro_f1,
    mean_reciprocal_rank,
    normalized_mutual_information,
    precision_at_k,
    purity,
    recall_at_k,
    stratified_folds,
)
from .features import fisher_scores, project, select_features
from .hac import Dendrogram, cluster_vectors, hac
from .hierarchical import HierarchicalClassifier, HierarchicalPrediction
from .linkanalysis import hits, pagerank, popular_near
from .linkfolder import EnhancedClassifier, build_coplacement
from .naive_bayes import NaiveBayesClassifier
from .scatter_gather import Cluster, ScatterGatherSession, buckshot
from .themes import (
    FolderDoc,
    Theme,
    ThemeDiscovery,
    ThemeTaxonomy,
    universal_baseline,
)

__all__ = [
    "CVResult",
    "Cluster",
    "Dendrogram",
    "EnhancedClassifier",
    "FolderDoc",
    "HierarchicalClassifier",
    "HierarchicalPrediction",
    "NaiveBayesClassifier",
    "ScatterGatherSession",
    "Theme",
    "ThemeDiscovery",
    "ThemeTaxonomy",
    "accuracy",
    "buckshot",
    "build_coplacement",
    "cluster_vectors",
    "confusion_matrix",
    "cross_validate",
    "fisher_scores",
    "hac",
    "hits",
    "pagerank",
    "popular_near",
    "macro_f1",
    "mean_reciprocal_rank",
    "normalized_mutual_information",
    "precision_at_k",
    "project",
    "purity",
    "recall_at_k",
    "select_features",
    "stratified_folds",
    "universal_baseline",
]
