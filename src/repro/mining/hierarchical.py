"""Hierarchical classification over the folder tree (reference [3]).

The paper's Bayesian classifier descends a *topic taxonomy* — Chakrabarti,
Dom, Agrawal & Raghavan's TAPER organizes "large text databases into
hierarchical topic taxonomies", and Memex's folder trees are exactly such
taxonomies.  This module classifies the way TAPER does:

* one multinomial NB discriminates among the **children of each internal
  node**, trained on all documents pooled under each child's subtree
  (pooling is the shrinkage that makes sparse deep classes trainable);
* prediction **descends greedily** from the root, multiplying child
  posteriors;
* with an ``ambiguity_threshold``, descent **stops early** at an internal
  node when no child is convincing — so a page about music-in-general
  lands in ``Music`` rather than being forced into ``Music/Jazz``.  The
  folder tab then shows the '?' one level up, which is precisely the
  right UI behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NotFitted
from ..text.vectorize import SparseVector
from .naive_bayes import NaiveBayesClassifier


@dataclass
class _TaxNode:
    name: str                                  # full path ("Music/Jazz")
    children: dict[str, "_TaxNode"] = field(default_factory=dict)
    doc_ids: list[int] = field(default_factory=list)  # docs labeled here
    classifier: NaiveBayesClassifier | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def subtree_docs(self) -> list[int]:
        out = list(self.doc_ids)
        for child in self.children.values():
            out.extend(child.subtree_docs())
        return out


@dataclass(frozen=True)
class HierarchicalPrediction:
    """Where the descent stopped and how it got there."""

    path: str                       # full path of the final node
    confidence: float               # product of child posteriors
    stopped_early: bool             # True -> an internal node (ambiguous)
    steps: tuple[tuple[str, float], ...]  # (child path, posterior) per level


class HierarchicalClassifier:
    """Taxonomy-descent classifier over slash-separated label paths."""

    def __init__(
        self,
        *,
        smoothing: float = 0.1,
        feature_budget: int | None = None,
        ambiguity_threshold: float = 0.0,
    ) -> None:
        """
        Parameters
        ----------
        ambiguity_threshold:
            Stop descending when the best child's posterior falls below
            this (0.0 = always descend to a leaf).
        """
        self.smoothing = smoothing
        self.feature_budget = feature_budget
        self.ambiguity_threshold = ambiguity_threshold
        self._root: _TaxNode | None = None
        self._docs: list[SparseVector] = []

    # -- training --------------------------------------------------------------

    def fit(
        self,
        docs: list[SparseVector],
        labels: list[str],
    ) -> "HierarchicalClassifier":
        """Train from documents labeled with paths like ``Music/Jazz``."""
        if not docs:
            raise NotFitted("cannot fit on zero documents")
        if len(docs) != len(labels):
            raise ValueError("docs and labels must align")
        self._docs = list(docs)
        root = _TaxNode(name="")
        for i, label in enumerate(labels):
            node = root
            path_parts = [p for p in label.split("/") if p]
            if not path_parts:
                raise ValueError("empty label path")
            built = []
            for part in path_parts:
                built.append(part)
                full = "/".join(built)
                if part not in node.children:
                    node.children[part] = _TaxNode(name=full)
                node = node.children[part]
            node.doc_ids.append(i)

        # Train a child-discriminator at every internal node.
        for node in self._walk(root):
            if node.is_leaf:
                continue
            train_docs: list[SparseVector] = []
            train_labels: list[str] = []
            for child in node.children.values():
                for doc_id in child.subtree_docs():
                    train_docs.append(self._docs[doc_id])
                    train_labels.append(child.name)
            # Documents labeled exactly at this internal node train
            # nothing here; they simply stop at this node.
            node.classifier = NaiveBayesClassifier(
                smoothing=self.smoothing,
                feature_budget=self.feature_budget,
            ).fit(train_docs, train_labels)
        self._root = root
        return self

    @staticmethod
    def _walk(node: _TaxNode):
        yield node
        for child in node.children.values():
            yield from HierarchicalClassifier._walk(child)

    # -- inference --------------------------------------------------------------------

    def predict(self, doc: SparseVector) -> HierarchicalPrediction:
        if self._root is None:
            raise NotFitted("classifier has not been fitted")
        node = self._root
        confidence = 1.0
        steps: list[tuple[str, float]] = []
        stopped_early = False
        while not node.is_leaf:
            assert node.classifier is not None
            best_child, posterior = node.classifier.predict(doc)
            if (
                self.ambiguity_threshold > 0.0
                and posterior < self.ambiguity_threshold
                and node is not self._root
            ):
                stopped_early = True
                break
            steps.append((best_child, posterior))
            confidence *= posterior
            child_name = best_child.rsplit("/", 1)[-1]
            node = node.children[child_name]
        else:
            stopped_early = False
        return HierarchicalPrediction(
            path=node.name,
            confidence=confidence,
            stopped_early=stopped_early and not node.is_leaf,
            steps=tuple(steps),
        )

    def predict_path(self, doc: SparseVector) -> tuple[str, float]:
        """Convenience: ``(path, confidence)``."""
        prediction = self.predict(doc)
        return prediction.path, prediction.confidence

    def classes(self) -> list[str]:
        """All leaf paths."""
        if self._root is None:
            raise NotFitted("classifier has not been fitted")
        return sorted(
            node.name for node in self._walk(self._root)
            if node.is_leaf and node.name
        )

    def level_accuracy(
        self,
        docs: list[SparseVector],
        labels: list[str],
        *,
        level: int,
    ) -> float:
        """Accuracy of the first *level* path components — the per-level
        metric of reference [3] (coarse mistakes cost more than deep ones).
        """
        if not docs:
            return 0.0
        correct = 0
        for doc, label in zip(docs, labels):
            want = "/".join(label.split("/")[:level])
            got = "/".join(self.predict(doc).path.split("/")[:level])
            correct += got == want
        return correct / len(docs)
