"""Community theme discovery (Figure 4).

"Memex computes, from the document-folder associations of multiple users,
a topic taxonomy specifically tailored for the interests of that user
population.  The taxonomy consists of themes which capture common factors
in people's interests when they can, while maintaining individuality when
they must" — and §4: "refining topics where needed and coarsening where
possible".

Formulation reproduced here:

* Each (user, folder) pair becomes one **folder document**: the normalized
  centroid of its member pages' TF-IDF vectors.
* Group-average HAC agglomerates all folder documents of the community.
* The dendrogram is cut **adaptively**, top-down: a cluster splits into
  its children while it is *large* (enough folders), *shared* (folders
  from enough distinct users — common factors), and *incohesive* (its
  merge similarity is below a cohesion threshold).  Deep community
  interests therefore get refined into sub-themes; one-user idiosyncratic
  folders survive as their own shallow themes (individuality).
* Every theme keeps its centroid, member folders, and an automatic label
  from its top terms, so downstream code (profiles, recommendation,
  resource discovery) can treat themes as classification targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EmptyCorpus
from ..text.vectorize import SparseVector, centroid, cosine, normalize, top_terms
from ..text.vocabulary import Vocabulary
from .hac import hac


@dataclass(frozen=True)
class FolderDoc:
    """One user's folder, represented as a single document."""

    user_id: str
    folder_path: str
    vector: SparseVector
    num_pages: int = 1


@dataclass
class Theme:
    """A node of the discovered community taxonomy."""

    theme_id: str
    label: str
    center: SparseVector
    folders: list[tuple[str, str]]        # (user_id, folder_path)
    children: list["Theme"] = field(default_factory=list)
    cohesion: float = 1.0                 # avg pairwise sim at this node
    weight: float = 0.0                   # total pages under the theme

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def num_users(self) -> int:
        return len({u for u, _ in self.folders})

    def walk(self) -> list["Theme"]:
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out


@dataclass
class ThemeTaxonomy:
    """The discovered taxonomy plus assignment utilities."""

    roots: list[Theme]

    def all_themes(self) -> list[Theme]:
        out: list[Theme] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    def leaves(self) -> list[Theme]:
        return [t for t in self.all_themes() if t.is_leaf]

    def theme(self, theme_id: str) -> Theme | None:
        for t in self.all_themes():
            if t.theme_id == theme_id:
                return t
        return None

    def assign(self, vector: SparseVector) -> tuple[Theme, float]:
        """Most similar leaf theme for a document/folder vector."""
        leaves = self.leaves()
        if not leaves:
            raise EmptyCorpus("taxonomy has no themes")
        best = max(leaves, key=lambda t: (cosine(vector, t.center), t.theme_id))
        return best, cosine(vector, best.center)

    def fit(self, folder_docs: list[FolderDoc]) -> float:
        """Mean similarity of folder documents to their best theme —
        the taxonomy-quality metric of E5/E8."""
        if not folder_docs:
            raise EmptyCorpus("no folder documents to score")
        return sum(self.assign(fd.vector)[1] for fd in folder_docs) / len(folder_docs)

    def depth(self) -> int:
        def d(theme: Theme) -> int:
            return 1 + max((d(c) for c in theme.children), default=0)
        return max((d(r) for r in self.roots), default=0)


class ThemeDiscovery:
    """Discover a community theme taxonomy from folder documents.

    Parameters
    ----------
    min_split_folders:
        A cluster must hold at least this many folders to be refined.
    min_split_users:
        ... and folders from at least this many distinct users ("common
        factors"); a single user's private interest is never subdivided.
    cohesion_threshold:
        Clusters whose average pairwise member similarity is already above
        this are cohesive enough — coarsening where possible.
    max_depth:
        Hard refinement limit.
    """

    def __init__(
        self,
        *,
        min_split_folders: int = 4,
        min_split_users: int = 2,
        cohesion_threshold: float = 0.55,
        max_depth: int = 4,
    ) -> None:
        self.min_split_folders = min_split_folders
        self.min_split_users = min_split_users
        self.cohesion_threshold = cohesion_threshold
        self.max_depth = max_depth

    def discover(
        self,
        folder_docs: list[FolderDoc],
        vocab: Vocabulary | None = None,
    ) -> ThemeTaxonomy:
        """Run discovery.  *vocab* (when given) supplies term strings for
        human-readable theme labels; otherwise labels use folder names."""
        if not folder_docs:
            raise EmptyCorpus("no folder documents")
        vectors = [normalize(fd.vector) for fd in folder_docs]
        dendro = hac(vectors, linkage="group-average")

        # Rebuild the binary merge tree: node id -> (children, similarity).
        children: dict[int, tuple[int, int]] = {}
        sim_at: dict[int, float] = {}
        for left, right, new, sim in dendro.merges:
            children[new] = (left, right)
            sim_at[new] = sim
        root_id = dendro.merges[-1][2] if dendro.merges else 0

        counter = [0]

        def leaves_under(node: int) -> list[int]:
            if node < len(folder_docs):
                return [node]
            l, r = children[node]
            return leaves_under(l) + leaves_under(r)

        def build(node: int, depth: int) -> Theme:
            member_idx = leaves_under(node)
            members = [folder_docs[i] for i in member_idx]
            theme = self._make_theme(counter, members, vectors, member_idx, vocab)
            theme.cohesion = sim_at.get(node, 1.0)
            if node < len(folder_docs):
                return theme
            refine = (
                depth < self.max_depth
                and len(members) >= self.min_split_folders
                and theme.num_users >= self.min_split_users
                and sim_at[node] < self.cohesion_threshold
            )
            if refine:
                l, r = children[node]
                theme.children = [build(l, depth + 1), build(r, depth + 1)]
            return theme

        root_theme = build(root_id, 0)
        # The synthetic super-root groups everything; expose its children
        # as top-level themes when it was refined, else itself.
        roots = root_theme.children if root_theme.children else [root_theme]
        return ThemeTaxonomy(roots=roots)

    def _make_theme(
        self,
        counter: list[int],
        members: list[FolderDoc],
        vectors: list[SparseVector],
        member_idx: list[int],
        vocab: Vocabulary | None,
    ) -> Theme:
        theme_id = f"theme-{counter[0]}"
        counter[0] += 1
        center = centroid([vectors[i] for i in member_idx])
        if vocab is not None and center:
            # Skip ubiquitous terms (web chrome like "home", "links"):
            # a label should name the topic, not the medium.
            cutoff = max(2, int(0.25 * vocab.num_docs))
            distinctive = {
                t: w for t, w in center.items() if vocab.doc_freq(t) <= cutoff
            } or center
            label = " ".join(top_terms(vocab, distinctive, k=3))
        else:
            # Majority folder basename.
            names = [fd.folder_path.rsplit("/", 1)[-1].lower() for fd in members]
            label = max(set(names), key=names.count)
        return Theme(
            theme_id=theme_id,
            label=label,
            center=center,
            folders=[(fd.user_id, fd.folder_path) for fd in members],
            weight=float(sum(fd.num_pages for fd in members)),
        )


def universal_baseline(
    topic_vectors: dict[str, SparseVector],
) -> ThemeTaxonomy:
    """A PowerBookmarks-style baseline: one flat theme per node of a fixed
    'universal' directory (e.g. the master taxonomy), ignoring the
    community's own folder structure.  Used by E5/E8 to show the
    community-tailored taxonomy fits better."""
    roots = [
        Theme(
            theme_id=f"uni-{i}",
            label=name,
            center=normalize(vec),
            folders=[],
            weight=0.0,
        )
        for i, (name, vec) in enumerate(sorted(topic_vectors.items()))
    ]
    if not roots:
        raise EmptyCorpus("universal baseline needs topic vectors")
    return ThemeTaxonomy(roots=roots)
