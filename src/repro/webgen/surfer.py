"""Stochastic topical surfers: the simulated volunteers.

Each surfer has a ground-truth interest profile over leaf topics and a
personal folder tree covering their core interests (with personal names —
two users interested in the same leaf usually call their folders different
things, the individuality theme discovery must respect).  A surfer's life
is a sequence of *sessions*; each session is about one topic and is a
biased walk over the hyperlink graph: follow an on-topic out-link when one
exists, otherwise jump back to a known on-topic page.  On-topic pages get
bookmarked with some probability; occasionally a surfer files an off-topic
page into a topical folder for *functional* reasons — the paper's explicit
hard case for text-only classification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from ..server.events import (
    BookmarkEvent,
    FolderCreateEvent,
    SurfEvent,
    VisitEvent,
)
from .corpus import WebCorpus
from .topictree import TopicNode

DAY = 86_400.0

# Personal naming variants: how a user might label a folder for a leaf
# topic whose taxonomy label is X.
_NAMING_STYLES = [
    lambda label: label,
    lambda label: label.lower(),
    lambda label: f"My {label}",
    lambda label: f"{label} stuff",
    lambda label: f"{label} links",
]


@dataclass
class SurferProfile:
    """Ground truth for one simulated user."""

    user_id: str
    interests: dict[str, float]            # leaf topic -> probability
    folders: dict[str, list[str]]          # folder path -> covered leaf topics
    sessions_per_day: float = 2.0
    session_length: tuple[int, int] = (4, 15)
    bookmark_prob: float = 0.12
    functional_bookmark_prob: float = 0.02
    jump_prob: float = 0.2
    # People disproportionately bookmark front/entry pages (§4): multiplier
    # applied to bookmark_prob when the current page is a front page.
    front_page_bookmark_bias: float = 3.0

    def folder_for_topic(self, topic: str) -> str | None:
        for path, topics in self.folders.items():
            if topic in topics:
                return path
        return None


def make_profile(
    user_id: str,
    root: TopicNode,
    rng: random.Random,
    *,
    community_interests: dict[str, float] | None = None,
    num_core: int = 3,
    num_fringe: int = 2,
    community_adherence: float = 0.7,
) -> SurferProfile:
    """Draw one surfer's ground truth.

    When *community_interests* is given, the surfer mostly samples their
    core topics from it (weighted), so a community's members overlap
    without being identical.
    """
    leaves = [l.name for l in root.leaves()]
    core: list[str] = []
    if community_interests:
        names = list(community_interests)
        weights = [community_interests[n] for n in names]
        while len(core) < num_core:
            if rng.random() < community_adherence:
                pick = rng.choices(names, weights)[0]
            else:
                pick = rng.choice(leaves)
            if pick not in core:
                core.append(pick)
    else:
        core = rng.sample(leaves, num_core)
    fringe_pool = [l for l in leaves if l not in core]
    fringe = rng.sample(fringe_pool, min(num_fringe, len(fringe_pool)))

    interests: dict[str, float] = {}
    for topic in core:
        interests[topic] = rng.uniform(0.5, 1.0)
    for topic in fringe:
        interests[topic] = rng.uniform(0.05, 0.15)
    total = sum(interests.values())
    interests = {t: w / total for t, w in interests.items()}

    # Personal folder tree over the core topics: usually one folder per
    # core topic; sometimes two core topics merged into one folder
    # (individual coarse view); fringe topics get no folder.
    folders: dict[str, list[str]] = {}
    topics_left = list(core)
    rng.shuffle(topics_left)
    while topics_left:
        topic = topics_left.pop()
        covered = [topic]
        if topics_left and rng.random() < 0.15:
            covered.append(topics_left.pop())
        label = topic.rsplit("/", 1)[-1]
        style = rng.choice(_NAMING_STYLES)
        path = style(label)
        # Nest under a personal parent occasionally.
        if rng.random() < 0.3:
            parent = topic.split("/", 1)[0]
            path = f"{parent}/{path}"
        folders[path] = covered
    return SurferProfile(user_id=user_id, interests=interests, folders=folders)


@dataclass
class SimulationResult:
    """Everything a run produced, for replay and evaluation."""

    events: list[SurfEvent]
    profiles: dict[str, SurferProfile]
    corpus: WebCorpus
    graph: nx.DiGraph
    duration_days: float

    def events_for(self, user_id: str) -> list[SurfEvent]:
        return [e for e in self.events if e.user_id == user_id]


def simulate_surfers(
    corpus: WebCorpus,
    graph: nx.DiGraph,
    profiles: list[SurferProfile],
    rng: random.Random,
    *,
    days: float = 30.0,
    start_at: float = 0.0,
) -> SimulationResult:
    """Run all surfers for *days* simulated days; returns time-ordered events."""
    by_topic: dict[str, list[str]] = {}
    for page in corpus.pages.values():
        by_topic.setdefault(page.topic, []).append(page.url)

    events: list[SurfEvent] = []
    session_counter = 0

    for profile in profiles:
        # Folder creations happen at sign-up time.
        for path in profile.folders:
            events.append(FolderCreateEvent(profile.user_id, start_at, path))

        t = start_at
        end = start_at + days * DAY
        while True:
            # Next session start: exponential inter-arrival.
            gap = rng.expovariate(profile.sessions_per_day / DAY)
            t += gap
            if t >= end:
                break
            session_counter += 1
            topics = list(profile.interests)
            weights = [profile.interests[x] for x in topics]
            topic = rng.choices(topics, weights)[0]
            events.extend(
                _run_session(
                    profile, topic, t, session_counter,
                    corpus, graph, by_topic, rng,
                )
            )

    events.sort(key=lambda e: e.at)
    return SimulationResult(
        events=events,
        profiles={p.user_id: p for p in profiles},
        corpus=corpus,
        graph=graph,
        duration_days=days,
    )


def _run_session(
    profile: SurferProfile,
    topic: str,
    start: float,
    session_id: int,
    corpus: WebCorpus,
    graph: nx.DiGraph,
    by_topic: dict[str, list[str]],
    rng: random.Random,
) -> list[SurfEvent]:
    events: list[SurfEvent] = []
    # Pages that do not exist yet cannot be surfed.
    pool = [
        u for u in by_topic.get(topic, ())
        if corpus.pages[u].born_at <= start
    ]
    if not pool:
        return events
    url = rng.choice(pool)
    referrer: str | None = None
    t = start
    length = rng.randint(*profile.session_length)
    for _ in range(length):
        truth = {"topic": topic, "page_topic": corpus.topic_of(url)}
        events.append(VisitEvent(profile.user_id, t, url, referrer, session_id, truth))

        on_topic = corpus.topic_of(url) == topic
        p_bookmark = profile.bookmark_prob
        if corpus.pages[url].front_page:
            p_bookmark = min(1.0, p_bookmark * profile.front_page_bookmark_bias)
        if on_topic and rng.random() < p_bookmark:
            folder = profile.folder_for_topic(topic)
            if folder is not None:
                events.append(BookmarkEvent(
                    profile.user_id, t + 1.0, url, folder,
                    {"topic": topic, "functional": False},
                ))
        elif not on_topic and rng.random() < profile.functional_bookmark_prob:
            # Functional bookmark: off-topic page filed into the session's
            # topical folder (e.g. a tool's front page kept with the topic).
            folder = profile.folder_for_topic(topic)
            if folder is not None:
                events.append(BookmarkEvent(
                    profile.user_id, t + 1.0, url, folder,
                    {"topic": topic, "functional": True},
                ))

        # Choose the next page: prefer an on-topic out-link, else maybe
        # follow any link, else jump back into the topic pool.
        succs = [
            s for s in graph.successors(url) if corpus.pages[s].born_at <= t
        ]
        on_topic_succs = [s for s in succs if corpus.topic_of(s) == topic]
        r = rng.random()
        referrer = url
        if on_topic_succs and r >= profile.jump_prob:
            url = rng.choice(on_topic_succs)
        elif succs and r >= profile.jump_prob * 0.5:
            url = rng.choice(succs)
        else:
            url = rng.choice(pool)
            referrer = None
        t += rng.uniform(10.0, 120.0)  # dwell time
    return events
