"""Hyperlink graph over the synthetic corpus.

Links follow two empirical regularities of the late-90s Web that the
paper's algorithms exploit:

* **topic locality** — most links stay within the same (or a sibling)
  topic; the enhanced classifier's hyperlink features work only because
  of this, and the trail tab's "Web neighborhood" is meaningful because
  of it;
* **preferential attachment** — in-link counts are heavy-tailed, so
  "popular pages" (the resource-discovery daemon's target) exist.

Front pages act as hubs: they receive extra out-links (they are
navigation pages), which is what lets link features rescue their sparse
text in E1.
"""

from __future__ import annotations

import random
from collections import defaultdict

import networkx as nx

from .corpus import WebCorpus


def generate_links(
    corpus: WebCorpus,
    rng: random.Random,
    *,
    mean_out_degree: int = 7,
    locality: float = 0.75,
    sibling_share: float = 0.6,
    hub_bonus: int = 6,
    preferential: float = 0.7,
) -> nx.DiGraph:
    """Wire the corpus into a directed hyperlink graph (also recorded on
    each page's ``out_links``).

    Parameters
    ----------
    locality:
        Probability a link's target shares the source's leaf topic or a
        sibling leaf under the same parent.
    sibling_share:
        Within local links, probability of staying on the *same* leaf
        (vs. a sibling leaf).
    hub_bonus:
        Extra out-links granted to front pages.
    preferential:
        Probability a non-local target is chosen preferentially by current
        in-degree rather than uniformly.
    """
    urls = corpus.urls()
    by_leaf: dict[str, list[str]] = defaultdict(list)
    for page in corpus.pages.values():
        by_leaf[page.topic].append(page.url)
    siblings: dict[str, list[str]] = {}
    for leaf in corpus.root.leaves():
        parent = leaf.parent
        group = [l.name for l in (parent.children if parent else [leaf]) if l.is_leaf]
        siblings[leaf.name] = [name for name in group if name != leaf.name]

    graph = nx.DiGraph()
    graph.add_nodes_from(urls)
    in_degree: dict[str, int] = {u: 0 for u in urls}
    # A growing pool where each URL appears once per in-link (plus once
    # baseline) gives O(1) preferential sampling.
    pref_pool: list[str] = list(urls)

    for page in corpus.pages.values():
        fanout = max(1, rng.randint(mean_out_degree - 3, mean_out_degree + 3))
        if page.front_page:
            fanout += hub_bonus
        targets: set[str] = set()
        attempts = 0
        while len(targets) < fanout and attempts < fanout * 8:
            attempts += 1
            r = rng.random()
            if r < locality:
                if rng.random() < sibling_share or not siblings[page.topic]:
                    pool = by_leaf[page.topic]
                else:
                    pool = by_leaf[rng.choice(siblings[page.topic])]
                candidate = rng.choice(pool)
            elif rng.random() < preferential and pref_pool:
                candidate = rng.choice(pref_pool)
            else:
                candidate = rng.choice(urls)
            if candidate != page.url:
                targets.add(candidate)
        for dst in sorted(targets):
            graph.add_edge(page.url, dst)
            in_degree[dst] += 1
            pref_pool.append(dst)
        page.out_links = sorted(targets)

    return graph


def link_topic_locality(corpus: WebCorpus, graph: nx.DiGraph) -> float:
    """Fraction of edges whose endpoints share a leaf topic (diagnostic)."""
    edges = graph.number_of_edges()
    if edges == 0:
        return 0.0
    same = sum(
        1 for src, dst in graph.edges()
        if corpus.topic_of(src) == corpus.topic_of(dst)
    )
    return same / edges
