"""Population-scale user and arrival models for open-loop load generation.

``repro.webgen`` simulates a *community* (tens of surfers, replayed
faithfully); the load harness (``repro.loadgen``) needs the opposite
regime: a population scaled toward 10^6 users where almost everyone is
idle at any instant and a heavy-tailed minority does most of the
surfing.  This module provides the three statistical primitives that
regime needs, all seeded and process-independent (no use of builtin
``hash()``, no set iteration — byte-stable under any PYTHONHASHSEED):

* :class:`ZipfPopulation` — rank-addressed users with Zipfian activity,
  sampled in O(1) by inverting the continuous CDF (no per-user state is
  ever materialised, so "a million users" costs nothing until one of
  them shows up);
* :class:`DiurnalCurve` — a sinusoidal daily arrival-rate modulation;
* :class:`FlashCrowd` — a bounded window during which arrivals are
  multiplied and herded onto a single theme (the "everyone hits the
  eclipse page" scenario);
* :func:`arrival_times` — a nonhomogeneous Poisson process sampled by
  thinning, driven by any ``rate(t)`` function.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Callable, Iterator, Sequence

DAY = 86_400.0


def _stable_seed(*parts: object) -> int:
    """A 64-bit seed derived from *parts* via sha256 — identical in
    every process regardless of PYTHONHASHSEED (builtin ``hash()`` is
    salted per process and must never feed generation)."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ZipfPopulation:
    """A rank-addressed population with Zipfian activity.

    User ``rank`` (1-based) has activity proportional to ``rank**-s``;
    :meth:`sample_rank` draws a rank with that law in O(1) by inverting
    the *continuous* approximation of the CDF::

        x = (1 + u * (N**(1-s) - 1)) ** (1 / (1-s))

    (for ``s == 1`` the inverse degenerates to ``N**u``).  The
    approximation error against the discrete law is immaterial for load
    shaping, and it is what makes a 10^6-user population free: no
    precomputed table, no per-user state.

    >>> pop = ZipfPopulation(1_000_000, exponent=1.1)
    >>> rng = random.Random(7)
    >>> ranks = [pop.sample_rank(rng) for _ in range(1000)]
    >>> min(ranks) >= 1 and max(ranks) <= 1_000_000
    True
    >>> pop.user_id(1)
    'u0000001'
    """

    def __init__(self, size: int, *, exponent: float = 1.1) -> None:
        if size < 1:
            raise ValueError("population size must be >= 1")
        if exponent <= 0:
            raise ValueError("zipf exponent must be > 0")
        self.size = size
        self.exponent = exponent
        # Precompute the inverse-CDF constants once.
        s = exponent
        if abs(s - 1.0) < 1e-9:
            self._log_n = math.log(size)
            self._span = None
        else:
            self._log_n = None
            self._span = size ** (1.0 - s) - 1.0
            self._inv_power = 1.0 / (1.0 - s)

    def sample_rank(self, rng: random.Random) -> int:
        """Draw a 1-based rank; rank 1 is the most active user."""
        u = rng.random()
        if self._log_n is not None:
            x = math.exp(u * self._log_n)
        else:
            x = (1.0 + u * self._span) ** self._inv_power
        return min(self.size, max(1, int(x)))

    def user_id(self, rank: int) -> str:
        """Stable, sortable identifier for *rank* (``u0000001``...)."""
        return f"u{rank:07d}"

    def sample_user(self, rng: random.Random) -> str:
        return self.user_id(self.sample_rank(rng))

    def interests(
        self,
        user_id: str,
        topics: Sequence[str],
        *,
        k: int = 2,
        seed: int = 0,
    ) -> list[str]:
        """The user's stable topic interests: *k* distinct topics drawn
        with a bias toward the front of the (sorted) topic list, from a
        per-user RNG seeded by ``(seed, user_id)`` — the same user gets
        the same interests in every process and every run."""
        ordered = sorted(topics)
        if not ordered:
            return []
        rng = random.Random(_stable_seed("interests", seed, user_id))
        k = min(k, len(ordered))
        picks: list[str] = []
        while len(picks) < k:
            # Quadratic bias concentrates interest on few topics without
            # a weight table.
            idx = min(int(len(ordered) * rng.random() ** 2), len(ordered) - 1)
            topic = ordered[idx]
            if topic not in picks:
                picks.append(topic)
        return picks


class DiurnalCurve:
    """Sinusoidal daily modulation of a base arrival rate.

    ``rate(t) = base * (1 + amplitude * cos(2*pi*(t/period - peak)))``
    peaks at ``t = peak * period`` (default: 80% through the day, the
    evening surf), troughs half a period later, and averages ``base``
    over a full period.  ``max_rate`` bounds it for thinning.
    """

    def __init__(
        self,
        base_rate: float,
        *,
        amplitude: float = 0.6,
        period: float = DAY,
        peak: float = 0.8,
    ) -> None:
        if base_rate < 0:
            raise ValueError("base_rate must be >= 0")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ValueError("period must be > 0")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.peak = peak

    def rate(self, t: float) -> float:
        phase = 2.0 * math.pi * (t / self.period - self.peak)
        return self.base_rate * (1.0 + self.amplitude * math.cos(phase))

    @property
    def max_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)


class FlashCrowd:
    """A bounded arrival surge herded onto one theme.

    Within ``[at, at + duration)`` the arrival rate is multiplied by up
    to ``multiplier`` (linear ramp up over the first fifth of the
    window, plateau, linear ramp down over the last fifth) and a
    ``attraction`` fraction of arriving sessions surf ``topic``
    regardless of their own interests.
    """

    def __init__(
        self,
        *,
        at: float,
        duration: float,
        multiplier: float = 4.0,
        topic: str = "",
        attraction: float = 0.9,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be > 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= attraction <= 1.0:
            raise ValueError("attraction must be in [0, 1]")
        self.at = at
        self.duration = duration
        self.multiplier = multiplier
        self.topic = topic
        self.attraction = attraction

    def active(self, t: float) -> bool:
        return self.at <= t < self.at + self.duration

    def boost(self, t: float) -> float:
        """Multiplicative rate factor at *t* (1.0 outside the window)."""
        if not self.active(t):
            return 1.0
        ramp = self.duration / 5.0
        into = t - self.at
        left = self.at + self.duration - t
        frac = min(1.0, into / ramp, left / ramp)
        return 1.0 + (self.multiplier - 1.0) * frac


def arrival_times(
    rate: Callable[[float], float],
    max_rate: float,
    t0: float,
    t1: float,
    rng: random.Random,
) -> Iterator[float]:
    """Sample a nonhomogeneous Poisson process on ``[t0, t1)`` by
    thinning (Lewis & Shedler): draw candidate arrivals at the constant
    envelope ``max_rate`` and accept each with probability
    ``rate(t) / max_rate``.  ``rate`` must never exceed ``max_rate``."""
    if max_rate <= 0:
        return
    t = t0
    while True:
        t += rng.expovariate(max_rate)
        if t >= t1:
            return
        if rng.random() * max_rate <= rate(t):
            yield t
