"""Synthetic Web corpus: pages with ground-truth topics.

Pages come in two shapes, following §4's observation about bookmarked
URLs: ordinary **content pages** (a few hundred tokens) and **front
pages** — "less text and more graphics" — which get one short navigational
blurb.  Front-page probability and text lengths are the corpus's difficulty
knobs; E1 sweeps them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .language import TopicLanguageModel
from .topictree import TopicNode


@dataclass
class Page:
    """One synthetic Web page with its ground truth."""

    url: str
    topic: str                 # ground-truth leaf topic name
    title: str
    text: str
    front_page: bool
    born_at: float = 0.0       # when the page appeared on the Web
    out_links: list[str] = field(default_factory=list)

    @property
    def token_estimate(self) -> int:
        return len(self.text.split())


@dataclass
class WebCorpus:
    """The generated Web: pages plus the taxonomy they were drawn from."""

    root: TopicNode
    pages: dict[str, Page]
    language: TopicLanguageModel

    def by_topic(self, topic_name: str) -> list[Page]:
        return [p for p in self.pages.values() if p.topic == topic_name]

    def urls(self) -> list[str]:
        return list(self.pages)

    def topic_of(self, url: str) -> str:
        return self.pages[url].topic

    def __len__(self) -> int:
        return len(self.pages)


def _host_for(topic: TopicNode, index: int, rng: random.Random) -> str:
    """Fabricate a plausible host name for a page of this topic."""
    stem = topic.label.lower()
    kind = rng.choice(["www", "pages", "web", "members"])
    tld = rng.choice(["com", "org", "net", "edu"])
    return f"{kind}.{stem}{index}.{tld}"


def generate_corpus(
    root: TopicNode,
    rng: random.Random,
    *,
    pages_per_leaf: int = 30,
    front_page_fraction: float = 0.3,
    content_length: tuple[int, int] = (120, 400),
    front_length: tuple[int, int] = (8, 30),
    topical_mass: float = 0.55,
    front_topical_mass: float | None = None,
    ancestor_share: float = 0.35,
    late_fraction: float = 0.0,
    birth_window: float = 0.0,
) -> WebCorpus:
    """Generate a topic-labelled corpus over the leaves of *root*.

    Front pages draw far fewer tokens AND a much smaller topical share of
    them (mostly generic navigation chrome — "less text and more
    graphics"), reproducing the sparse-text challenge the paper highlights
    for bookmarks.  *front_topical_mass* defaults to a third of
    *topical_mass*.

    With ``late_fraction > 0``, that share of pages is *born late*:
    ``born_at`` is drawn uniformly over ``[0, birth_window]`` seconds and
    surfers never visit a page before its birth — the substrate for §1's
    "popular sites ... that have appeared in the last six months".
    """
    language = TopicLanguageModel(
        root, rng, topical_mass=topical_mass, ancestor_share=ancestor_share,
    )
    if front_topical_mass is None:
        front_topical_mass = topical_mass / 3.0
    pages: dict[str, Page] = {}
    for leaf in root.leaves():
        for i in range(pages_per_leaf):
            front = rng.random() < front_page_fraction
            lo, hi = front_length if front else content_length
            length = rng.randint(lo, hi)
            tokens = language.generate(
                leaf, rng, length,
                topical_mass=front_topical_mass if front else None,
            )
            host = _host_for(leaf, i, rng)
            path = rng.choice(["index", "main", "page", "doc", "article"])
            url = f"http://{host}/{path}{i}.html"
            title_tokens = language.generate(leaf, rng, rng.randint(2, 5))
            born_at = 0.0
            if late_fraction > 0.0 and rng.random() < late_fraction:
                born_at = rng.uniform(0.0, birth_window)
            page = Page(
                url=url,
                topic=leaf.name,
                title=" ".join(title_tokens).title(),
                text=" ".join(tokens),
                front_page=front,
                born_at=born_at,
            )
            pages[url] = page
    return WebCorpus(root=root, pages=pages, language=language)
