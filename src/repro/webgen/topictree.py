"""Topic taxonomies for the synthetic Web.

The paper's world has a 'universal' directory (Yahoo!/Open Directory) that
is "too specialized in most topics, and not sufficiently specialized in the
areas in which the community is deeply interested" (§4).  We reproduce that
world with a hand-built master taxonomy — realistic top levels, each leaf
carrying seed terms that drive its language model — plus utilities to
derive per-community ground-truth interest sets from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(eq=False)
class TopicNode:
    """One node of a topic taxonomy.

    Nodes compare and hash by identity (``eq=False``): the parent/children
    cycle makes field-wise equality both meaningless and non-terminating.
    """

    name: str                     # e.g. "Arts/Music/Classical"
    seed_terms: tuple[str, ...] = ()
    children: list["TopicNode"] = field(default_factory=list)
    parent: "TopicNode | None" = None

    @property
    def label(self) -> str:
        """Last path component."""
        return self.name.rsplit("/", 1)[-1]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> list["TopicNode"]:
        """This node and all descendants, pre-order."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def leaves(self) -> list["TopicNode"]:
        return [n for n in self.walk() if n.is_leaf]

    def find(self, name: str) -> "TopicNode | None":
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def ancestors(self) -> list["TopicNode"]:
        """Path from the root (exclusive) down to this node (inclusive)."""
        path: list[TopicNode] = []
        node: TopicNode | None = self
        while node is not None and node.parent is not None:
            path.append(node)
            node = node.parent
        return list(reversed(path))

    def depth(self) -> int:
        return len(self.ancestors())


def _node(name: str, seeds: str = "", *children: TopicNode) -> TopicNode:
    node = TopicNode(name, tuple(seeds.split()))
    for child in children:
        child.parent = node
        # Re-root the child subtree's names under this node.
        for sub in child.walk():
            sub.name = f"{name}/{sub.name}" if name else sub.name
        node.children.append(child)
    return node


def master_taxonomy() -> TopicNode:
    """The 'universal directory' for the simulated Web: 8 top-level areas,
    41 leaf topics, each leaf with the seed terms its pages talk about."""
    return _node(
        "", "",
        _node(
            "Arts", "art culture gallery exhibition creative",
            _node("Music", "music song album artist listen melody",
                  _node("Classical", "classical symphony orchestra concerto bach mozart beethoven composer opera sonata violin conductor philharmonic"),
                  _node("Jazz", "jazz improvisation saxophone trumpet swing bebop coltrane quartet blues standards"),
                  _node("Rock", "rock guitar band drummer concert tour album riff amplifier vocalist")),
            _node("Film", "film movie cinema director actor screenplay festival scene premiere critic review"),
            _node("Literature", "novel poetry author fiction literary chapter prose publisher manuscript anthology"),
        ),
        _node(
            "Computers", "computer software internet technology system digital",
            _node("Programming", "programming code developer library",
                  _node("Compilers", "compiler optimization parser register allocation inlining codegen lexer grammar backend loop intermediate representation"),
                  _node("Databases", "database query transaction index relational schema sql storage recovery concurrency join btree"),
                  _node("Web", "html browser server http javascript applet servlet cgi hyperlink webpage")),
            _node("Hardware", "processor chip memory motherboard silicon circuit cache transistor peripheral"),
            _node("AI", "learning neural classifier clustering bayesian algorithm training model inference datamining"),
            _node("Networking", "network router protocol packet bandwidth tcp ethernet firewall latency switch"),
        ),
        _node(
            "Science", "science research laboratory experiment theory journal",
            _node("Physics", "physics quantum particle relativity energy photon electron momentum wave"),
            _node("Biology", "biology cell gene protein evolution organism dna enzyme species"),
            _node("Astronomy", "astronomy telescope galaxy planet star nebula orbit cosmology supernova"),
            _node("Mathematics", "mathematics theorem proof algebra topology calculus integer geometry conjecture"),
        ),
        _node(
            "Recreation", "recreation hobby leisure outdoor club weekend",
            _node("Cycling", "cycling bicycle ride pedal gear saddle helmet trail tour mountain puncture derailleur"),
            _node("Hiking", "hiking trek trail summit backpack mountain ridge camp boots wilderness"),
            _node("Photography", "photography camera lens aperture exposure shutter portrait darkroom tripod"),
            _node("Cooking", "cooking recipe ingredient oven simmer spice kitchen bake flavor cuisine"),
            _node("Chess", "chess opening endgame gambit knight bishop checkmate tournament grandmaster"),
        ),
        _node(
            "News", "news report headline press daily coverage",
            _node("Politics", "politics election parliament policy minister vote campaign legislation senate"),
            _node("Sports", "sports match tournament league score championship team player season"),
            _node("Weather", "weather forecast temperature rainfall monsoon storm humidity climate"),
        ),
        _node(
            "Business", "business company market industry enterprise",
            _node("Finance", "finance stock investment portfolio dividend bond equity broker trading"),
            _node("Startups", "startup venture funding entrepreneur incubator pitch valuation founder"),
            _node("Jobs", "job career resume salary interview employer hiring vacancy recruiter"),
        ),
        _node(
            "Health", "health medical wellness clinic patient",
            _node("Fitness", "fitness exercise workout gym stretching cardio endurance muscle"),
            _node("Nutrition", "nutrition diet vitamin calorie protein mineral wholesome meal"),
            _node("Medicine", "medicine treatment diagnosis therapy prescription symptom vaccine physician"),
        ),
        _node(
            "Travel", "travel trip destination tourist journey",
            _node("Europe", "europe paris rome castle museum rail alps cathedral itinerary"),
            _node("Asia", "asia temple bazaar himalaya rickshaw monsoon spice delta pagoda"),
            _node("Budget", "budget hostel backpacker discount fare cheap airfare voucher"),
        ),
    )


def random_taxonomy(
    rng: random.Random,
    *,
    branching: tuple[int, int] = (2, 4),
    depth: int = 3,
    seed_terms_per_topic: int = 10,
) -> TopicNode:
    """Generate an arbitrary-size taxonomy (for scale benchmarks).

    Names are synthetic (``T3.1.2``); seed terms are drawn from a synthetic
    lexicon so every leaf has a distinct vocabulary core.
    """
    counter = [0]

    def make(level: int, name: str) -> TopicNode:
        seeds = tuple(
            f"w{counter[0] * seed_terms_per_topic + j}"
            for j in range(seed_terms_per_topic)
        )
        counter[0] += 1
        node = TopicNode(name, seeds)
        if level < depth:
            for i in range(rng.randint(*branching)):
                child = make(level + 1, f"{name}.{i}" if name else f"T{i}")
                child.parent = node
                node.children.append(child)
        return node

    return make(0, "")


def community_interests(
    root: TopicNode,
    rng: random.Random,
    *,
    num_core: int = 4,
    num_fringe: int = 4,
    sibling_bias: bool = True,
) -> dict[str, float]:
    """Pick a community's ground-truth interest distribution over leaves.

    A focused community (the paper's deployment unit) has a few *core*
    topics carrying most of the probability mass and a fringe of casual
    topics — this is what makes universal directories a bad fit and theme
    discovery worthwhile.

    With *sibling_bias* (the default), core topics are gathered subtree by
    subtree, so a community deep into e.g. Music holds Classical *and*
    Jazz *and* Rock — mutually confusable folders, the regime in which the
    paper's text-only classifier struggles.
    """
    leaves = root.leaves()
    if num_core + num_fringe > len(leaves):
        raise ValueError("taxonomy too small for requested interest set")
    if sibling_bias:
        # dict.fromkeys keeps encounter order — a set of identity-hashed
        # nodes would make the choice depend on memory addresses.
        parents = list(dict.fromkeys(
            leaf.parent for leaf in leaves if leaf.parent is not None
        ))
        rng.shuffle(parents)
        core: list[TopicNode] = []
        for parent in parents:
            for leaf in parent.children:
                if leaf.is_leaf and len(core) < num_core:
                    core.append(leaf)
            if len(core) >= num_core:
                break
        fringe_pool = [l for l in leaves if l not in core]
        fringe = rng.sample(fringe_pool, num_fringe)
        chosen = core + fringe
    else:
        chosen = rng.sample(leaves, num_core + num_fringe)
    weights: dict[str, float] = {}
    for leaf in chosen[:num_core]:
        weights[leaf.name] = rng.uniform(0.6, 1.0)
    for leaf in chosen[num_core:]:
        weights[leaf.name] = rng.uniform(0.05, 0.2)
    total = sum(weights.values())
    return {name: w / total for name, w in weights.items()}
