"""Per-topic term distributions for synthetic page text.

Every topic gets a unigram language model that mixes:

* a shared **background** vocabulary with a Zipfian rank-frequency curve
  (function words, generic Web chrome), and
* a **topical** vocabulary built from the topic's seed terms plus derived
  forms, with mass shared up the taxonomy path so sibling topics are more
  confusable than unrelated ones — the property that makes hierarchical
  classification (and its failures on sparse text) realistic.

The mixture weight of topical mass and the document length are the two
knobs E1 turns to recreate the paper's "front pages with less text" regime.
"""

from __future__ import annotations

import random

from .topictree import TopicNode

# Suffixes used to expand seed words into related forms, so a topic's
# vocabulary is bigger than its seed list and stems overlap naturally.
_DERIVED_SUFFIXES = ("s", "ing", "ed", "er")

BACKGROUND_SIZE = 600


def _zipf_weights(n: int, s: float = 1.1) -> list[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


class TopicLanguageModel:
    """Unigram models for every topic in a taxonomy."""

    def __init__(
        self,
        root: TopicNode,
        rng: random.Random,
        *,
        topical_mass: float = 0.55,
        ancestor_share: float = 0.35,
        background_size: int = BACKGROUND_SIZE,
    ) -> None:
        """
        Parameters
        ----------
        topical_mass:
            Probability that a generated token is topical rather than
            background.
        ancestor_share:
            Fraction of the topical mass drawn from ancestor topics'
            vocabularies (makes siblings confusable).
        """
        self.root = root
        self.topical_mass = topical_mass
        self.ancestor_share = ancestor_share
        background: list[str] = []
        for i in range(background_size):
            word = _COMMON_WEB_WORDS[i % len(_COMMON_WEB_WORDS)]
            generation = i // len(_COMMON_WEB_WORDS)
            background.append(word if generation == 0 else f"{word}{generation}")
        self._background = background
        self._bg_weights = _zipf_weights(len(self._background))
        self._topic_vocab: dict[str, list[str]] = {}
        self._topic_weights: dict[str, list[float]] = {}
        for node in root.walk():
            vocab = self._expand(node, rng)
            self._topic_vocab[node.name] = vocab
            self._topic_weights[node.name] = _zipf_weights(len(vocab), s=0.9) if vocab else []

    @staticmethod
    def _expand(node: TopicNode, rng: random.Random) -> list[str]:
        vocab: list[str] = list(node.seed_terms)
        for seed in node.seed_terms:
            for suffix in _DERIVED_SUFFIXES:
                if rng.random() < 0.5:
                    vocab.append(seed + suffix)
        return list(dict.fromkeys(vocab))

    # -- generation ----------------------------------------------------------

    def generate(
        self,
        topic: TopicNode,
        rng: random.Random,
        length: int,
        *,
        topical_mass: float | None = None,
    ) -> list[str]:
        """Draw *length* tokens from the topic's mixture model.

        *topical_mass* overrides the model default (front pages use a much
        lower value).
        """
        mass = self.topical_mass if topical_mass is None else topical_mass
        path = topic.ancestors() or [topic]
        own = self._topic_vocab.get(topic.name) or ["misc"]
        own_w = self._topic_weights.get(topic.name) or [1.0]
        tokens: list[str] = []
        for _ in range(length):
            r = rng.random()
            if r >= mass:
                tokens.append(rng.choices(self._background, self._bg_weights)[0])
            elif r < mass * self.ancestor_share and len(path) > 1:
                donor = rng.choice(path[:-1])
                vocab = self._topic_vocab.get(donor.name)
                if vocab:
                    tokens.append(rng.choices(vocab, self._topic_weights[donor.name])[0])
                else:
                    tokens.append(rng.choices(own, own_w)[0])
            else:
                tokens.append(rng.choices(own, own_w)[0])
        return tokens

    def topic_vocabulary(self, topic: TopicNode) -> list[str]:
        return list(self._topic_vocab.get(topic.name, ()))


_COMMON_WEB_WORDS = [
    "home", "click", "site", "links", "welcome", "contact", "update",
    "information", "free", "online", "service", "guide", "top", "list",
    "help", "index", "resources", "member", "join", "newsletter", "search",
    "today", "world", "best", "view", "download", "mail", "user", "visit",
]
