"""Pre-packaged workloads for the examples and benchmarks.

A :class:`Workload` bundles everything one experiment needs — taxonomy,
corpus, link graph, surfer profiles, and the time-ordered event stream —
generated deterministically from a seed so every benchmark run sees the
same simulated community.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from .corpus import WebCorpus, generate_corpus
from .graph import generate_links
from .surfer import (
    SimulationResult,
    SurferProfile,
    make_profile,
    simulate_surfers,
)
from .topictree import TopicNode, community_interests, master_taxonomy


@dataclass
class Workload:
    """One fully generated simulation scenario."""

    name: str
    root: TopicNode
    corpus: WebCorpus
    graph: nx.DiGraph
    profiles: list[SurferProfile]
    result: SimulationResult
    community: dict[str, float]

    @property
    def events(self):
        return self.result.events


def build_workload(
    *,
    name: str = "default",
    taxonomy: TopicNode | None = None,
    seed: int = 42,
    num_users: int = 12,
    days: float = 30.0,
    pages_per_leaf: int = 25,
    front_page_fraction: float = 0.3,
    num_core_interests: int = 3,
    num_fringe_interests: int = 2,
    community_core: int = 4,
    community_fringe: int = 4,
    sibling_bias: bool = True,
    topical_mass: float = 0.55,
    front_topical_mass: float | None = None,
    ancestor_share: float = 0.35,
    sessions_per_day: float | None = None,
    bookmark_prob: float | None = None,
    functional_bookmark_prob: float | None = None,
    late_page_fraction: float = 0.0,
) -> Workload:
    """Generate a deterministic end-to-end workload.

    The defaults produce a laptop-scale scenario (~1000 pages, ~12 users,
    a month of surfing) comparable to the paper's volunteer deployment.
    *late_page_fraction* makes that share of pages appear mid-simulation
    (uniformly over the run), for fresh-resource experiments.
    """
    from .surfer import DAY

    rng = random.Random(seed)
    root = taxonomy if taxonomy is not None else master_taxonomy()
    corpus = generate_corpus(
        root, rng,
        pages_per_leaf=pages_per_leaf,
        front_page_fraction=front_page_fraction,
        topical_mass=topical_mass,
        front_topical_mass=front_topical_mass,
        ancestor_share=ancestor_share,
        late_fraction=late_page_fraction,
        birth_window=days * DAY,
    )
    graph = generate_links(corpus, rng)
    community = community_interests(
        root, rng,
        num_core=community_core, num_fringe=community_fringe,
        sibling_bias=sibling_bias,
    )
    profiles = []
    for i in range(num_users):
        profile = make_profile(
            f"user{i:02d}", root, rng,
            community_interests=community,
            num_core=num_core_interests,
            num_fringe=num_fringe_interests,
        )
        if sessions_per_day is not None:
            profile.sessions_per_day = sessions_per_day
        if bookmark_prob is not None:
            profile.bookmark_prob = bookmark_prob
        if functional_bookmark_prob is not None:
            profile.functional_bookmark_prob = functional_bookmark_prob
        profiles.append(profile)
    result = simulate_surfers(corpus, graph, profiles, rng, days=days)
    return Workload(
        name=name,
        root=root,
        corpus=corpus,
        graph=graph,
        profiles=profiles,
        result=result,
        community=community,
    )


def bookmark_challenge_workload(*, seed: int = 7, num_users: int = 12) -> Workload:
    """The E1 preset: the bookmark-classification regime of §4.

    Bookmarks land mostly on sparse, nearly topic-free front pages; users
    hold many mutually-confusable sibling folders; a few bookmarks are
    purely functional.  Calibrated so the text-only Bayesian classifier
    scores ~40 % while the enhanced text+link+folder classifier scores
    ~80 % — the paper's headline numbers.
    """
    return build_workload(
        name="bookmark-challenge",
        seed=seed,
        num_users=num_users,
        days=60,
        pages_per_leaf=25,
        front_page_fraction=0.9,
        topical_mass=0.2,
        front_topical_mass=0.03,
        ancestor_share=0.7,
        bookmark_prob=0.25,
        num_core_interests=8,
        num_fringe_interests=2,
        community_core=10,
        community_fringe=2,
        functional_bookmark_prob=0.08,
    )


def labelled_bookmark_dataset(
    workload: Workload,
    *,
    min_per_folder: int = 3,
) -> list[tuple[str, str, str]]:
    """Extract ``(user_id, url, folder_path)`` triples from the workload's
    bookmark events — the training data of E1.  Folders with fewer than
    *min_per_folder* bookmarks are dropped (too small to learn or test)."""
    from ..server.events import BookmarkEvent

    triples = [
        (e.user_id, e.url, e.folder_path)
        for e in workload.events
        if isinstance(e, BookmarkEvent)
    ]
    counts: dict[tuple[str, str], int] = {}
    for user_id, _, folder in triples:
        counts[(user_id, folder)] = counts.get((user_id, folder), 0) + 1
    return [
        (user_id, url, folder)
        for user_id, url, folder in triples
        if counts[(user_id, folder)] >= min_per_folder
    ]
