"""Synthetic Web and surfer simulation substrate.

Replaces the live 1999 Web and the paper's volunteer surfers (see
DESIGN.md §2 for the substitution argument).
"""

from .corpus import Page, WebCorpus, generate_corpus
from .graph import generate_links, link_topic_locality
from .language import TopicLanguageModel
from .population import (
    DiurnalCurve,
    FlashCrowd,
    ZipfPopulation,
    arrival_times,
)
from .surfer import (
    SimulationResult,
    SurferProfile,
    make_profile,
    simulate_surfers,
)
from .topictree import (
    TopicNode,
    community_interests,
    master_taxonomy,
    random_taxonomy,
)
from .workload import (
    Workload,
    bookmark_challenge_workload,
    build_workload,
    labelled_bookmark_dataset,
)

__all__ = [
    "DiurnalCurve",
    "FlashCrowd",
    "Page",
    "SimulationResult",
    "SurferProfile",
    "TopicLanguageModel",
    "TopicNode",
    "WebCorpus",
    "Workload",
    "ZipfPopulation",
    "arrival_times",
    "bookmark_challenge_workload",
    "build_workload",
    "community_interests",
    "generate_corpus",
    "generate_links",
    "labelled_bookmark_dataset",
    "link_topic_locality",
    "make_profile",
    "master_taxonomy",
    "random_taxonomy",
    "simulate_surfers",
]
