"""Netscape ``bookmarks.html`` parser and writer.

"Existing bookmarks from Netscape or Explorer can be imported into
Memex's editable tree-structured topic view; conversely Memex can export
back to these browsers" (§2).  The format is the venerable
NETSCAPE-Bookmark-file-1: nested ``<DL><p>`` lists where ``<DT><H3>``
opens a folder and ``<DT><A HREF=...>`` is a bookmark.  The parser is
tolerant of the tag-soup real exports contain (unclosed ``<DT>``, mixed
case, stray ``<p>``).
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass, field

from ..errors import BookmarkFormatError


@dataclass
class BookmarkNode:
    """Parsed folder with bookmarks and subfolders (browser-neutral)."""

    name: str
    add_date: float = 0.0
    bookmarks: list["BookmarkEntry"] = field(default_factory=list)
    folders: list["BookmarkNode"] = field(default_factory=list)

    def walk(self) -> list["BookmarkNode"]:
        out = [self]
        for child in self.folders:
            out.extend(child.walk())
        return out

    def total_bookmarks(self) -> int:
        return sum(len(node.bookmarks) for node in self.walk())


@dataclass
class BookmarkEntry:
    url: str
    title: str = ""
    add_date: float = 0.0


_TOKEN_RE = re.compile(
    r"<h3[^>]*>(?P<folder>.*?)</h3>"
    r"|<a\s+(?P<attrs>[^>]*)>(?P<title>.*?)</a>"
    r"|(?P<open><dl[^>]*>)"
    r"|(?P<close></dl>)",
    re.IGNORECASE | re.DOTALL,
)
_HREF_RE = re.compile(r"""href\s*=\s*["']([^"']*)["']""", re.IGNORECASE)
_ADD_DATE_RE = re.compile(r"""add_date\s*=\s*["']?(\d+)["']?""", re.IGNORECASE)
_H3_DATE_RE = re.compile(r"""<h3[^>]*add_date\s*=\s*["']?(\d+)["']?""", re.IGNORECASE)

HEADER = (
    "<!DOCTYPE NETSCAPE-Bookmark-file-1>\n"
    "<!-- This is an automatically generated file. -->\n"
    "<TITLE>Bookmarks</TITLE>\n"
    "<H1>Bookmarks</H1>\n"
)


def parse_bookmarks(text: str) -> BookmarkNode:
    """Parse a bookmarks.html document into a :class:`BookmarkNode` tree."""
    if "netscape-bookmark-file" not in text.lower() and "<dl" not in text.lower():
        raise BookmarkFormatError("not a Netscape bookmark file")
    root = BookmarkNode(name="")
    stack: list[BookmarkNode] = [root]
    pending_folder: BookmarkNode | None = None

    for match in _TOKEN_RE.finditer(text):
        if match.group("folder") is not None:
            name = html.unescape(match.group("folder")).strip()
            node = BookmarkNode(name=name)
            date = _H3_DATE_RE.search(match.group(0))
            if date:
                node.add_date = float(date.group(1))
            stack[-1].folders.append(node)
            pending_folder = node
        elif match.group("attrs") is not None:
            attrs = match.group("attrs")
            href = _HREF_RE.search(attrs)
            if not href:
                continue
            entry = BookmarkEntry(
                url=html.unescape(href.group(1)),
                title=html.unescape(match.group("title")).strip(),
            )
            date = _ADD_DATE_RE.search(attrs)
            if date:
                entry.add_date = float(date.group(1))
            stack[-1].bookmarks.append(entry)
        elif match.group("open") is not None:
            # The first <DL> is the root's own list; later ones belong to
            # the folder whose <H3> immediately preceded them.
            if pending_folder is not None:
                stack.append(pending_folder)
                pending_folder = None
            elif len(stack) == 1 and not stack[0].bookmarks and not stack[0].folders:
                pass  # root-level <DL>
            else:
                stack.append(stack[-1])  # anonymous list: stay put
        elif match.group("close") is not None:
            if len(stack) > 1:
                stack.pop()
    return root


def write_bookmarks(root: BookmarkNode) -> str:
    """Serialize a tree back to NETSCAPE-Bookmark-file-1 HTML."""
    lines: list[str] = [HEADER, "<DL><p>"]

    def emit(node: BookmarkNode, depth: int) -> None:
        pad = "    " * depth
        for entry in node.bookmarks:
            date = f' ADD_DATE="{int(entry.add_date)}"' if entry.add_date else ""
            title = html.escape(entry.title or entry.url)
            lines.append(f'{pad}<DT><A HREF="{html.escape(entry.url, quote=True)}"{date}>{title}</A>')
        for child in node.folders:
            date = f' ADD_DATE="{int(child.add_date)}"' if child.add_date else ""
            lines.append(f"{pad}<DT><H3{date}>{html.escape(child.name)}</H3>")
            lines.append(f"{pad}<DL><p>")
            emit(child, depth + 1)
            lines.append(f"{pad}</DL><p>")

    emit(root, 1)
    lines.append("</DL><p>")
    return "\n".join(lines) + "\n"
