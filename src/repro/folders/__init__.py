"""Personal topic space: folder trees and browser bookmark interchange."""

from .explorer import (
    export_favorites,
    import_favorites,
    parse_url_file,
    write_url_file,
)
from .importer import (
    bookmarks_to_tree,
    export_explorer_favorites,
    export_netscape_file,
    import_explorer_favorites,
    import_netscape_file,
    tree_to_bookmarks,
)
from .netscape import (
    BookmarkEntry,
    BookmarkNode,
    parse_bookmarks,
    write_bookmarks,
)
from .tree import (
    ITEM_BOOKMARK,
    ITEM_CORRECTION,
    ITEM_GUESS,
    Folder,
    FolderItem,
    FolderTree,
)

__all__ = [
    "BookmarkEntry",
    "BookmarkNode",
    "Folder",
    "FolderItem",
    "FolderTree",
    "ITEM_BOOKMARK",
    "ITEM_CORRECTION",
    "ITEM_GUESS",
    "bookmarks_to_tree",
    "export_explorer_favorites",
    "export_favorites",
    "export_netscape_file",
    "import_explorer_favorites",
    "import_favorites",
    "import_netscape_file",
    "parse_bookmarks",
    "parse_url_file",
    "tree_to_bookmarks",
    "write_bookmarks",
    "write_url_file",
]
