"""The editable folder tree: each user's personal topic space.

Figure 1's folder tab: a tree of named folders holding bookmarked URLs,
plus the classifier daemon's guesses "marked by '?'".  The tree is pure
data structure — server-side persistence goes through the catalog; the
client applet and the importer both manipulate this form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FolderCycle, NoSuchFolder

# Item provenance, mirroring storage.schema.ASSOC_* at the client level.
ITEM_BOOKMARK = "bookmark"
ITEM_GUESS = "guess"          # rendered with a '?' in the folder tab
ITEM_CORRECTION = "correction"


@dataclass
class FolderItem:
    """One URL filed in a folder."""

    url: str
    title: str = ""
    added_at: float = 0.0
    source: str = ITEM_BOOKMARK
    confidence: float | None = None

    @property
    def is_guess(self) -> bool:
        return self.source == ITEM_GUESS

    def display(self) -> str:
        """Folder-tab rendering: guesses carry the paper's '?' marker."""
        name = self.title or self.url
        return f"? {name}" if self.is_guess else name


@dataclass
class Folder:
    """One folder node."""

    name: str
    parent: "Folder | None" = None
    children: dict[str, "Folder"] = field(default_factory=dict)
    items: list[FolderItem] = field(default_factory=list)

    @property
    def path(self) -> str:
        parts: list[str] = []
        node: Folder | None = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def walk(self) -> list["Folder"]:
        out = [self]
        for child in self.children.values():
            out.extend(child.walk())
        return out

    def all_items(self) -> list[FolderItem]:
        """Items of this folder and every descendant."""
        out = list(self.items)
        for child in self.children.values():
            out.extend(child.all_items())
        return out

    def is_ancestor_of(self, other: "Folder") -> bool:
        node: Folder | None = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False


class FolderTree:
    """A user's folder hierarchy with path-based addressing.

    Paths are ``/``-separated (``Music/Western Classical``); the root is
    the empty path and never holds items directly visible in the UI.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self.root = Folder(name="")

    # -- folder management ----------------------------------------------------

    def ensure(self, path: str) -> Folder:
        """Create (if needed) and return the folder at *path*."""
        node = self.root
        for part in self._parts(path):
            if part not in node.children:
                node.children[part] = Folder(name=part, parent=node)
            node = node.children[part]
        return node

    def get(self, path: str) -> Folder:
        node = self.root
        for part in self._parts(path):
            try:
                node = node.children[part]
            except KeyError:
                raise NoSuchFolder(path) from None
        return node

    def exists(self, path: str) -> bool:
        try:
            self.get(path)
            return True
        except NoSuchFolder:
            return False

    def remove(self, path: str) -> Folder:
        """Detach and return the folder at *path* (and its subtree)."""
        node = self.get(path)
        if node is self.root:
            raise NoSuchFolder("cannot remove the root")
        assert node.parent is not None
        del node.parent.children[node.name]
        node.parent = None
        return node

    def move_folder(self, src_path: str, dst_parent_path: str) -> Folder:
        """Re-parent a folder (cut/paste of a whole subtree)."""
        node = self.get(src_path)
        if node is self.root:
            raise FolderCycle("cannot move the root")
        dst = self.get(dst_parent_path) if dst_parent_path else self.root
        if node.is_ancestor_of(dst):
            raise FolderCycle(f"{src_path!r} is an ancestor of {dst_parent_path!r}")
        if node.name in dst.children:
            raise FolderCycle(
                f"destination already has a folder named {node.name!r}"
            )
        assert node.parent is not None
        del node.parent.children[node.name]
        node.parent = dst
        dst.children[node.name] = node
        return node

    def rename(self, path: str, new_name: str) -> Folder:
        node = self.get(path)
        if node is self.root:
            raise NoSuchFolder("cannot rename the root")
        assert node.parent is not None
        if new_name in node.parent.children:
            raise FolderCycle(f"sibling named {new_name!r} already exists")
        del node.parent.children[node.name]
        node.name = new_name
        node.parent.children[new_name] = node
        return node

    # -- item management -----------------------------------------------------------

    def add_item(
        self,
        path: str,
        url: str,
        *,
        title: str = "",
        added_at: float = 0.0,
        source: str = ITEM_BOOKMARK,
        confidence: float | None = None,
    ) -> FolderItem:
        """File *url* into the folder at *path* (created if absent).

        Re-filing a URL already in that folder updates it in place; a
        deliberate source (bookmark/correction) always overrides a guess.
        """
        folder = self.ensure(path)
        for item in folder.items:
            if item.url == url:
                if item.source == ITEM_GUESS or source != ITEM_GUESS:
                    item.title = title or item.title
                    item.source = source
                    item.confidence = confidence
                    if added_at:
                        item.added_at = added_at
                return item
        item = FolderItem(
            url=url, title=title, added_at=added_at,
            source=source, confidence=confidence,
        )
        folder.items.append(item)
        return item

    def remove_item(self, path: str, url: str) -> bool:
        folder = self.get(path)
        before = len(folder.items)
        folder.items = [i for i in folder.items if i.url != url]
        return len(folder.items) < before

    def move_item(self, url: str, from_path: str, to_path: str) -> FolderItem:
        """Cut/paste a URL between folders — Figure 1's correction gesture.

        The moved item becomes a *correction* (the strongest supervision
        the classifier receives).
        """
        folder = self.get(from_path)
        found = None
        for item in folder.items:
            if item.url == url:
                found = item
                break
        if found is None:
            raise NoSuchFolder(f"{url!r} not in folder {from_path!r}")
        folder.items.remove(found)
        return self.add_item(
            to_path, url,
            title=found.title, added_at=found.added_at,
            source=ITEM_CORRECTION, confidence=None,
        )

    # -- queries ----------------------------------------------------------------------

    def folders(self) -> list[Folder]:
        """All folders except the root, pre-order."""
        return self.root.walk()[1:]

    def paths(self) -> list[str]:
        return [f.path for f in self.folders()]

    def find_url(self, url: str) -> list[tuple[str, FolderItem]]:
        """Every (folder path, item) where *url* is filed."""
        out: list[tuple[str, FolderItem]] = []
        for folder in self.folders():
            for item in folder.items:
                if item.url == url:
                    out.append((folder.path, item))
        return out

    def guesses(self) -> list[tuple[str, FolderItem]]:
        """All classifier guesses awaiting confirmation ('?' items)."""
        return [
            (folder.path, item)
            for folder in self.folders()
            for item in folder.items
            if item.is_guess
        ]

    def num_items(self) -> int:
        return sum(len(f.items) for f in self.folders())

    @staticmethod
    def _parts(path: str) -> list[str]:
        return [p for p in path.split("/") if p]

    def render(self) -> str:
        """ASCII rendering of the folder tab (tests and examples use it)."""
        lines: list[str] = []

        def emit(folder: Folder, depth: int) -> None:
            if folder.parent is not None:
                lines.append("  " * (depth - 1) + f"[{folder.name}]")
            for item in folder.items:
                lines.append("  " * depth + item.display())
            for name in sorted(folder.children):
                emit(folder.children[name], depth + 1)

        emit(self.root, 0)
        return "\n".join(lines)
