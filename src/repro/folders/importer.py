"""Import/export between browser bookmark trees and Memex folder trees."""

from __future__ import annotations

from pathlib import Path

from .explorer import export_favorites, import_favorites
from .netscape import BookmarkEntry, BookmarkNode, parse_bookmarks, write_bookmarks
from .tree import ITEM_BOOKMARK, Folder, FolderTree


def bookmarks_to_tree(
    root: BookmarkNode,
    *,
    owner: str = "",
    into: FolderTree | None = None,
    prefix: str = "",
) -> FolderTree:
    """Merge a parsed browser bookmark tree into a :class:`FolderTree`.

    Top-level loose bookmarks (outside any folder) land in ``Imported``.
    """
    tree = into if into is not None else FolderTree(owner=owner)

    def visit(node: BookmarkNode, path: str) -> None:
        target = path if path else "Imported"
        for entry in node.bookmarks:
            tree.add_item(
                target, entry.url,
                title=entry.title,
                added_at=entry.add_date,
                source=ITEM_BOOKMARK,
            )
        for child in node.folders:
            child_path = f"{path}/{child.name}" if path else child.name
            tree.ensure(child_path)
            visit(child, child_path)

    base = prefix.strip("/")
    if base:
        tree.ensure(base)
    visit(root, base)
    return tree


def tree_to_bookmarks(tree: FolderTree, *, include_guesses: bool = False) -> BookmarkNode:
    """Convert a folder tree back to a browser-neutral bookmark tree.

    Classifier guesses are excluded by default: exports should carry only
    deliberate bookmarks unless the caller opts in.
    """
    def convert(folder: Folder) -> BookmarkNode:
        node = BookmarkNode(name=folder.name)
        for item in folder.items:
            if item.is_guess and not include_guesses:
                continue
            node.bookmarks.append(
                BookmarkEntry(url=item.url, title=item.title, add_date=item.added_at)
            )
        for name in sorted(folder.children):
            node.folders.append(convert(folder.children[name]))
        return node

    root = convert(tree.root)
    root.name = ""
    return root


def import_netscape_file(path: str | Path, *, owner: str = "") -> FolderTree:
    """Parse a bookmarks.html file straight into a folder tree."""
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    return bookmarks_to_tree(parse_bookmarks(text), owner=owner)


def export_netscape_file(tree: FolderTree, path: str | Path) -> None:
    Path(path).write_text(write_bookmarks(tree_to_bookmarks(tree)), encoding="utf-8")


def import_explorer_favorites(directory: str | Path, *, owner: str = "") -> FolderTree:
    """Read an IE Favorites directory straight into a folder tree."""
    return bookmarks_to_tree(import_favorites(directory), owner=owner)


def export_explorer_favorites(tree: FolderTree, directory: str | Path) -> int:
    return export_favorites(tree_to_bookmarks(tree), directory)
