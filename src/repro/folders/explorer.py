"""Internet Explorer Favorites parser and writer.

IE stores each bookmark as a ``.url`` file (INI syntax with an
``[InternetShortcut]`` section) inside a directory tree whose directories
are the folders.  We read and write that layout on a real filesystem path,
converting to/from the browser-neutral :class:`BookmarkNode` tree shared
with the Netscape codec.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..errors import BookmarkFormatError
from .netscape import BookmarkEntry, BookmarkNode

_URL_LINE = re.compile(r"^\s*URL\s*=\s*(.+?)\s*$", re.IGNORECASE | re.MULTILINE)
_SECTION = re.compile(r"^\s*\[InternetShortcut\]\s*$", re.IGNORECASE | re.MULTILINE)

# Characters Windows forbids in file names; replaced on export.
_BAD_FILENAME_CHARS = re.compile(r'[<>:"/\\|?*]')


def parse_url_file(text: str) -> str:
    """Extract the URL from one ``.url`` file's contents."""
    if not _SECTION.search(text):
        raise BookmarkFormatError("missing [InternetShortcut] section")
    match = _URL_LINE.search(text)
    if not match:
        raise BookmarkFormatError("missing URL= line")
    return match.group(1)


def write_url_file(url: str) -> str:
    return f"[InternetShortcut]\r\nURL={url}\r\n"


def import_favorites(root_dir: str | Path) -> BookmarkNode:
    """Read an IE Favorites directory tree into a bookmark tree.

    Unreadable/malformed ``.url`` files are skipped (real Favorites
    folders accumulate junk); directories map to folders.
    """
    root_dir = Path(root_dir)
    if not root_dir.is_dir():
        raise BookmarkFormatError(f"{root_dir} is not a directory")

    def load(directory: Path, name: str) -> BookmarkNode:
        node = BookmarkNode(name=name)
        for child in sorted(directory.iterdir()):
            if child.is_dir():
                node.folders.append(load(child, child.name))
            elif child.suffix.lower() == ".url":
                try:
                    url = parse_url_file(child.read_text(encoding="utf-8", errors="replace"))
                except BookmarkFormatError:
                    continue
                node.bookmarks.append(
                    BookmarkEntry(url=url, title=child.stem)
                )
        return node

    return load(root_dir, "")


def export_favorites(root: BookmarkNode, target_dir: str | Path) -> int:
    """Write a bookmark tree as an IE Favorites directory; returns the
    number of ``.url`` files written."""
    target_dir = Path(target_dir)
    target_dir.mkdir(parents=True, exist_ok=True)
    written = 0

    def dump(node: BookmarkNode, directory: Path) -> None:
        nonlocal written
        directory.mkdir(parents=True, exist_ok=True)
        used: set[str] = set()
        for entry in node.bookmarks:
            stem = _BAD_FILENAME_CHARS.sub("_", entry.title or "bookmark") or "bookmark"
            candidate = stem
            n = 1
            while candidate.lower() in used:
                n += 1
                candidate = f"{stem} ({n})"
            used.add(candidate.lower())
            (directory / f"{candidate}.url").write_text(
                write_url_file(entry.url), encoding="utf-8",
            )
            written += 1
        for child in node.folders:
            safe = _BAD_FILENAME_CHARS.sub("_", child.name) or "folder"
            dump(child, directory / safe)

    dump(root, target_dir)
    return written
