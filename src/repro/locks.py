"""Locking primitives and the process-wide lock order.

The concurrent server (``repro.server.netserver``) dispatches requests
from a pool of worker threads while daemons tick on a background thread,
so every stateful layer the dispatch path touches carries a lock.  Two
rules keep that sane:

1. **One documented order.**  A thread holding a lock may only acquire
   locks *deeper* in :data:`LOCK_ORDER` (a higher rank).  The order is
   outermost-first and mirrors the call graph: scheduler and registry
   wrap requests, the repository wraps the stores, the stores wrap the
   WAL, and observability is innermost (anything may record a metric).
   ``scripts/check_lock_order.py`` lints nested acquisitions against
   this table, keyed by the canonical attribute names in
   :data:`LOCK_ATTRIBUTES`.

2. **Never hold a lock across user code.**  The scheduler claims a
   daemon's turn under its lock but runs ``run_once`` outside it; the
   servlet registry updates counters under its lock but dispatches
   handlers outside it; the socket server never holds its pool lock
   while serving a connection.

Reads that are single ``dict``/``list`` operations rely on the CPython
GIL and stay lock-free (documented per call site); anything compound —
check-then-act, multi-structure updates, WAL framing — takes a lock.
"""

from __future__ import annotations

import threading

#: Outermost-first lock levels.  A thread may acquire a lock only if its
#: level is strictly deeper (greater index) than every lock it already
#: holds.  ``scripts/check_lock_order.py`` enforces this syntactically.
LOCK_ORDER: tuple[str, ...] = (
    "router",        # ShardRouter._router_lock (shard availability view)
    "supervisor",    # ShardSupervisor._supervisor_lock (worker lifecycle)
    "scheduler",     # DaemonScheduler._sched_lock
    "registry",      # ServletRegistry._registry_lock
    "server",        # MemexServer._server_lock (clock, profiles, folders)
    "repository",    # MemexRepository._repo_lock (single writer)
    "relational",    # Database per-table RWLocks (alphabetical by table)
    "versioning",    # VersionCoordinator._versions_lock
    "index",         # InvertedIndex._index_lock (whole-scoring-pass atomicity)
    "kvstore",       # KVStore._kv_lock, LSMStore._lsm_lock (engine level)
    "wal",           # WriteAheadLog._wal_lock
    "cache",         # ShardedLRU shard locks
    "obs",           # metrics/tracer/log-hub internal locks
)

#: Canonical lock attribute name -> level.  New locks must register here
#: (and use the attribute name) so the lint can rank them.
LOCK_ATTRIBUTES: dict[str, str] = {
    "_router_lock": "router",
    "_supervisor_lock": "supervisor",
    "_sched_lock": "scheduler",
    "_registry_lock": "registry",
    "_server_lock": "server",
    "_repo_lock": "repository",
    "_rw": "relational",
    "_versions_lock": "versioning",
    "_index_lock": "index",
    "_ann_lock": "index",
    "_kv_lock": "kvstore",
    "_lsm_lock": "kvstore",
    "_wal_lock": "wal",
    "_shard_lock": "cache",
    "_obs_lock": "obs",
}


def lock_rank(attribute: str) -> int | None:
    """Rank of a lock attribute in :data:`LOCK_ORDER` (None if unknown)."""
    level = LOCK_ATTRIBUTES.get(attribute)
    return LOCK_ORDER.index(level) if level is not None else None


class RWLock:
    """A readers-writer lock with writer preference.

    Many readers may hold the lock at once; a writer excludes everyone.
    Writers are preferred: once a writer is waiting, new readers queue
    behind it, so a steady read load cannot starve commits.  The write
    side is reentrant for the owning thread (a transaction's rollback
    path may re-enter), and the owning writer may also *read* without
    deadlocking.  Read acquisition is intentionally NOT reentrant —
    callers take the read lock at the public API boundary only, never in
    internal helpers, which the per-table usage in
    :mod:`repro.storage.relational` follows.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_write_depth",
                 "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer: int | None = None   # thread ident of the writer
        self._write_depth = 0
        self._writers_waiting = 0

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Reading under one's own write lock is a no-op grant.
                self._write_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by non-owning thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ---------------------------------------------------

    def read(self) -> "_ReadGuard":
        return _ReadGuard(self)

    def write(self) -> "_WriteGuard":
        return _WriteGuard(self)


class _ReadGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: RWLock) -> None:
        self._lock = lock

    def __enter__(self) -> None:
        self._lock.acquire_read()

    def __exit__(self, *exc: object) -> None:
        self._lock.release_read()


class _WriteGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: RWLock) -> None:
        self._lock = lock

    def __enter__(self) -> None:
        self._lock.acquire_write()

    def __exit__(self, *exc: object) -> None:
        self._lock.release_write()
