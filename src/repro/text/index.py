"""Inverted index stored in the lightweight key-value store.

One posting list per term, keyed by the term string, exactly the
"fine-grained term-level data" the paper pushes out of the RDBMS into
Berkeley DB (§3).  Postings are ``doc_id -> term frequency`` maps
serialized through the backing store's record codec; document lengths and
corpus statistics live in sibling namespaces so the ranked-retrieval code
never touches the relational side.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterable

from ..errors import IndexError_
from ..storage.codec import get_codec
from ..storage.engine import Namespace, StorageEngine, open_engine
from .tokenize import tokenize


class InvertedIndex:
    """Incrementally maintained inverted index with removals.

    Parameters
    ----------
    kv:
        Backing storage engine; a private in-memory one is opened through
        the engine factory when omitted.
    prefix:
        Namespace prefix, letting several indices share one store (Memex
        keeps "several text-related indices in Berkeley DB").
    store_positions:
        Also keep per-document term positions (costs space; enables
        phrase queries like ``"register allocation"``).
    """

    def __init__(
        self,
        kv: StorageEngine | None = None,
        *,
        prefix: str = "idx",
        store_positions: bool = False,
    ) -> None:
        self._kv = kv if kv is not None else open_engine("btree")
        # Store-duck-typed backends (e.g. a raw BTree) may not carry a
        # codec; fall back to the default.
        self._codec = get_codec(getattr(self._kv, "codec", None))
        self._post = Namespace(self._kv, prefix + ".post")
        self._docs = Namespace(self._kv, prefix + ".docs")   # doc_id -> doc length
        self._meta = Namespace(self._kv, prefix + ".meta")
        self._pos = Namespace(self._kv, prefix + ".pos")
        self._norm = Namespace(self._kv, prefix + ".norm")   # doc_id -> sum (1+ln tf)^2
        self.store_positions = store_positions
        # Index lock ("index" rank in ``repro.locks.LOCK_ORDER``, above
        # the kvstore it writes through).  A document add/remove spans
        # many posting lists plus the doc-length entry; without one lock
        # over the whole update a concurrent scorer can see a doc_id in a
        # posting list before its length record exists.  Reentrant so
        # :class:`~repro.text.search.SearchEngine` can pin a consistent
        # view across a whole scoring pass (``with index.lock``) while
        # the methods it calls re-enter.
        self._index_lock = threading.RLock()

    @property
    def lock(self) -> threading.RLock:
        """Hold this to make several reads one consistent snapshot."""
        return self._index_lock

    # -- documents ------------------------------------------------------------

    def add_document(self, doc_id: str, text: str) -> int:
        """Index *text* under *doc_id*; returns the token count.

        Re-adding an existing doc_id replaces its previous content.
        """
        with self._index_lock:
            return self._add_document_locked(doc_id, text)

    def _add_document_locked(self, doc_id: str, text: str) -> int:
        if self.has_document(doc_id):
            self.remove_document(doc_id)
        terms = tokenize(text)
        counts: dict[str, int] = {}
        positions: dict[str, list[int]] = {}
        for i, term in enumerate(terms):
            counts[term] = counts.get(term, 0) + 1
            if self.store_positions:
                positions.setdefault(term, []).append(i)
        for term, tf in counts.items():
            postings = self._load_postings(term)
            postings[doc_id] = tf
            self._store_postings(term, postings)
        if self.store_positions:
            for term, pos in positions.items():
                table = self._load_positions(term)
                table[doc_id] = pos
                self._store_positions(term, table)
        self._docs.put(doc_id.encode("utf-8"), self._codec.encode(len(terms)))
        norm_sq = sum((1.0 + math.log(tf)) ** 2 for tf in counts.values())
        self._norm.put(doc_id.encode("utf-8"), self._codec.encode(norm_sq))
        return len(terms)

    def remove_document(self, doc_id: str) -> bool:
        """Remove a document from the index; returns whether it existed."""
        with self._index_lock:
            return self._remove_document_locked(doc_id)

    def _remove_document_locked(self, doc_id: str) -> bool:
        raw = self._docs.get(doc_id.encode("utf-8"))
        if raw is None:
            return False
        # Walk every posting list; laptop-scale corpora make this fine and
        # it avoids a per-document forward index.
        for key, value in list(self._post.items()):
            postings = self._codec.decode(value)
            if doc_id in postings:
                del postings[doc_id]
                term = key.decode("utf-8")
                self._store_postings(term, postings)
        for key, value in list(self._pos.items()):
            table = self._codec.decode(value)
            if doc_id in table:
                del table[doc_id]
                self._store_positions(key.decode("utf-8"), table)
        self._docs.delete(doc_id.encode("utf-8"))
        self._norm.discard(doc_id.encode("utf-8"))
        return True

    def has_document(self, doc_id: str) -> bool:
        with self._index_lock:
            return doc_id.encode("utf-8") in self._docs

    def doc_length(self, doc_id: str) -> int:
        with self._index_lock:
            return self._doc_length_locked(doc_id)

    def _doc_length_locked(self, doc_id: str) -> int:
        raw = self._docs.get(doc_id.encode("utf-8"))
        if raw is None:
            raise IndexError_(f"document {doc_id!r} not indexed")
        return int(self._codec.decode(raw))

    def doc_norm(self, doc_id: str) -> float:
        """Euclidean norm of the document's log-tf weight vector.

        Maintained at indexing time so cosine ranking can normalize by
        the *true* vector norm.  Stores written before norms existed
        fall back to the old ``sqrt(doc length)`` proxy rather than
        failing the scoring pass.
        """
        with self._index_lock:
            raw = self._norm.get(doc_id.encode("utf-8"))
            if raw is None:
                return math.sqrt(max(self._doc_length_locked(doc_id), 1))
            return math.sqrt(float(self._codec.decode(raw)))

    @property
    def num_docs(self) -> int:
        with self._index_lock:
            return len(self._docs)

    def avg_doc_length(self) -> float:
        with self._index_lock:
            lengths = [int(self._codec.decode(v)) for _, v in self._docs.items()]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def document_ids(self) -> list[str]:
        with self._index_lock:
            return [k.decode("utf-8") for k, _ in self._docs.items()]

    # -- terms ------------------------------------------------------------------

    def postings(self, term: str) -> dict[str, int]:
        """``{doc_id: term frequency}`` for one (already-stemmed) term."""
        with self._index_lock:
            return self._load_postings(term)

    def doc_freq(self, term: str) -> int:
        with self._index_lock:
            return len(self._load_postings(term))

    def vocabulary_size(self) -> int:
        with self._index_lock:
            return sum(1 for _ in self._post.items())

    def terms(self) -> Iterable[str]:
        with self._index_lock:
            keys = [key for key, _ in self._post.items()]
        for key in keys:
            yield key.decode("utf-8")

    # -- internals ------------------------------------------------------------------

    def _load_postings(self, term: str) -> dict[str, int]:
        raw = self._post.get(term.encode("utf-8"))
        if raw is None:
            return {}
        return self._codec.decode(raw)

    def _store_postings(self, term: str, postings: dict[str, int]) -> None:
        key = term.encode("utf-8")
        if postings:
            self._post.put(key, self._codec.encode(postings))
        else:
            self._post.discard(key)

    # -- positions (phrase queries) ---------------------------------------------

    def positions(self, term: str) -> dict[str, list[int]]:
        """``{doc_id: [token positions]}`` (empty unless store_positions)."""
        with self._index_lock:
            return self._load_positions(term)

    def phrase_match(self, terms: list[str]) -> dict[str, int]:
        """Documents containing *terms* consecutively; value = match count.

        Requires ``store_positions=True`` (raises otherwise).
        """
        if not self.store_positions:
            raise IndexError_("phrase queries need store_positions=True")
        if not terms:
            return {}
        with self._index_lock:
            tables = [self._load_positions(t) for t in terms]
        candidates = set(tables[0])
        for table in tables[1:]:
            candidates &= set(table)
        out: dict[str, int] = {}
        for doc_id in candidates:
            starts = set(tables[0][doc_id])
            for offset, table in enumerate(tables[1:], start=1):
                starts &= {p - offset for p in table[doc_id]}
                if not starts:
                    break
            if starts:
                out[doc_id] = len(starts)
        return out

    def _load_positions(self, term: str) -> dict[str, list[int]]:
        raw = self._pos.get(term.encode("utf-8"))
        if raw is None:
            return {}
        return self._codec.decode(raw)

    def _store_positions(self, term: str, table: dict[str, list[int]]) -> None:
        key = term.encode("utf-8")
        if table:
            self._pos.put(key, self._codec.encode(table))
        else:
            self._pos.discard(key)
