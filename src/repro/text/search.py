"""Ranked full-text search over the inverted index.

Implements the "standard full-text search over all pages visited" (§2)
with two ranking functions:

* **BM25** (Robertson/Sparck Jones) — the default;
* **TF-IDF cosine** — the classic vector-space ranking (SMART lnc.ltc:
  log-tf document weights, idf on the query side, true cosine
  normalization), kept both as a baseline and because the clustering
  code shares its weighting.

Both rankers clamp document frequencies into ``[0, num_docs]`` before
the idf computation, so degenerate corpora (a single document, or a
term present in *every* document) rank sanely instead of inverting or
zeroing the ordering.

Queries go through the same tokenizer/stemmer as documents, so "optimizing
compilers" matches "compiler optimization".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .index import InvertedIndex
from .tokenize import tokenize


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    doc_id: str
    score: float


class SearchEngine:
    """Ranked retrieval on top of an :class:`InvertedIndex`."""

    def __init__(
        self,
        index: InvertedIndex,
        *,
        k1: float = 1.5,
        b: float = 0.75,
    ) -> None:
        self.index = index
        self.k1 = k1
        self.b = b

    def search(
        self,
        query: str,
        *,
        k: int | None = 10,
        method: str = "bm25",
        candidates: set[str] | None = None,
    ) -> list[SearchHit]:
        """Top-*k* documents for *query* (``k=None`` ranks every match,
        which the paginated search servlet uses to report totals).

        ``candidates`` restricts scoring to a given doc-id set — Memex uses
        this to search within one user's trail or one topic's pages.
        """
        terms = tokenize(query)
        if not terms:
            return []
        # Pin one consistent index view for the whole scoring pass: a
        # concurrent add_document must not land between reading a posting
        # list and reading the doc lengths it references.
        with self.index.lock:
            if method == "bm25":
                scores = self._bm25(terms, candidates)
            elif method == "tfidf":
                scores = self._tfidf_cosine(terms, candidates)
            else:
                raise ValueError(f"unknown ranking method {method!r}")
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [SearchHit(doc_id, score) for doc_id, score in ranked[:k]]

    # -- rankers ------------------------------------------------------------------

    def _bm25(
        self, terms: list[str], candidates: set[str] | None
    ) -> dict[str, float]:
        n = self.index.num_docs
        if n == 0:
            return {}
        avgdl = self.index.avg_doc_length() or 1.0
        scores: dict[str, float] = {}
        for term in terms:
            postings = self.index.postings(term)
            if not postings:
                continue
            df = self._clamped_df(len(postings), n)
            idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
            for doc_id, tf in postings.items():
                if candidates is not None and doc_id not in candidates:
                    continue
                dl = self.index.doc_length(doc_id)
                denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl)
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf * (self.k1 + 1.0) / denom
        return scores

    def _tfidf_cosine(
        self, terms: list[str], candidates: set[str] | None
    ) -> dict[str, float]:
        n = self.index.num_docs
        if n == 0:
            return {}
        # Query vector.
        qcounts: dict[str, int] = {}
        for term in terms:
            qcounts[term] = qcounts.get(term, 0) + 1
        qvec: dict[str, float] = {}
        for term, tf in qcounts.items():
            df = self.index.doc_freq(term)
            if df == 0:
                continue
            qvec[term] = (1.0 + math.log(tf)) * self._idf(df, n)
        qnorm = math.sqrt(sum(w * w for w in qvec.values()))
        if qnorm == 0.0:
            return {}
        # Accumulate dot products against log-tf document weights and
        # normalize by the document's true weight-vector norm (lnc), so
        # the result is a genuine cosine in [0, 1].  The old code
        # normalized by a sqrt(doc length) proxy, which let scores
        # exceed 1 and inverted rankings for short repetitive documents.
        dots: dict[str, float] = {}
        for term, qw in qvec.items():
            for doc_id, tf in self.index.postings(term).items():
                if candidates is not None and doc_id not in candidates:
                    continue
                dots[doc_id] = dots.get(doc_id, 0.0) + qw * (1.0 + math.log(tf))
        return {
            doc_id: s / (qnorm * (self.index.doc_norm(doc_id) or 1.0))
            for doc_id, s in dots.items()
        }

    @staticmethod
    def _clamped_df(df: int, n: int) -> int:
        """Document frequency clamped into ``[0, n]``.

        Transient index skew (a posting visible before its doc-length
        record, or vice versa) and legacy stores can report ``df > n``;
        an unclamped value drives idf negative and inverts rankings.
        """
        return min(max(int(df), 0), n)

    @classmethod
    def _idf(cls, df: int, n: int) -> float:
        df = cls._clamped_df(df, n)
        return math.log((1 + n) / (1 + df)) + 1.0
