"""Tokenization for Web page text: word extraction, stopwords, stemming.

Memex's "mundane" keyword indexing (§4) still needs a real text pipeline.
This module provides one equivalent to what late-90s IR systems used:
lowercasing, alphanumeric word extraction, a standard English stopword
list, and the Porter (1980) suffix-stripping stemmer implemented in full.
"""

from __future__ import annotations

import re
from collections.abc import Iterator

_WORD_RE = re.compile(r"[a-z0-9]+")

# The classic SMART-derived stopword core; enough for indexing quality
# without ballooning the module.
STOPWORDS = frozenset("""
a about above after again against all am an and any are as at be because
been before being below between both but by can did do does doing down
during each few for from further had has have having he her here hers
herself him himself his how i if in into is it its itself just me more
most my myself no nor not now of off on once only or other our ours
ourselves out over own same she should so some such than that the their
theirs them themselves then there these they this those through to too
under until up very was we were what when where which while who whom why
will with you your yours yourself yourselves
""".split())


def words(text: str) -> Iterator[str]:
    """Yield lowercase alphanumeric word tokens from *text*."""
    for match in _WORD_RE.finditer(text.lower()):
        yield match.group()


def tokenize(
    text: str,
    *,
    stem: bool = True,
    drop_stopwords: bool = True,
    min_len: int = 2,
) -> list[str]:
    """Turn raw text into index terms.

    Numbers are kept (they matter for queries like "compiler optimization
    at Rice University" hitting course numbers); stopwords are dropped
    before stemming.
    """
    out: list[str] = []
    for w in words(text):
        if len(w) < min_len:
            continue
        if drop_stopwords and w in STOPWORDS:
            continue
        out.append(porter_stem(w) if stem else w)
    return out


# ---------------------------------------------------------------------------
# Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980)
# ---------------------------------------------------------------------------

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: number of VC sequences in the [C](VC)^m[V] form."""
    m = 0
    prev_vowel = False
    for i in range(len(stem)):
        v = not _is_consonant(stem, i)
        if prev_vowel and not v:
            m += 1
        prev_vowel = v
    return m


def _has_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _cvc(word: str) -> bool:
    """True when word ends consonant-vowel-consonant, final not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


_STEP2 = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def porter_stem(word: str) -> str:
    """Stem a lowercase word with the Porter algorithm."""
    if len(word) <= 2:
        return word
    w = word

    # Step 1a
    if w.endswith("sses"):
        w = w[:-2]
    elif w.endswith("ies"):
        w = w[:-2]
    elif w.endswith("ss"):
        pass
    elif w.endswith("s"):
        w = w[:-1]

    # Step 1b
    if w.endswith("eed"):
        if _measure(w[:-3]) > 0:
            w = w[:-1]
    else:
        flag = False
        if w.endswith("ed") and _has_vowel(w[:-2]):
            w = w[:-2]
            flag = True
        elif w.endswith("ing") and _has_vowel(w[:-3]):
            w = w[:-3]
            flag = True
        if flag:
            if w.endswith(("at", "bl", "iz")):
                w += "e"
            elif _ends_double_consonant(w) and not w.endswith(("l", "s", "z")):
                w = w[:-1]
            elif _measure(w) == 1 and _cvc(w):
                w += "e"

    # Step 1c
    if w.endswith("y") and _has_vowel(w[:-1]):
        w = w[:-1] + "i"

    # Step 2
    for suffix, repl in _STEP2:
        if w.endswith(suffix):
            stem = w[: len(w) - len(suffix)]
            if _measure(stem) > 0:
                w = stem + repl
            break

    # Step 3
    for suffix, repl in _STEP3:
        if w.endswith(suffix):
            stem = w[: len(w) - len(suffix)]
            if _measure(stem) > 0:
                w = stem + repl
            break

    # Step 4 ("ion" is handled in the else-branch with its *S/*T condition)
    for suffix in _STEP4:
        if w.endswith(suffix):
            stem = w[: len(w) - len(suffix)]
            if _measure(stem) > 1:
                w = stem
            break
    else:
        if w.endswith("ion"):
            stem = w[:-3]
            if _measure(stem) > 1 and stem.endswith(("s", "t")):
                w = stem

    # Step 5a
    if w.endswith("e"):
        stem = w[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _cvc(stem)):
            w = stem

    # Step 5b
    if _measure(w) > 1 and _ends_double_consonant(w) and w.endswith("l"):
        w = w[:-1]

    return w
