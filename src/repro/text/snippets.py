"""Query-biased result snippets for the search tab.

A hit list of bare URLs is unusable; each result gets a short excerpt
centered on the window of the page with the densest query-term
coverage, with matched words marked.  Matching happens on stems, so
"optimizing" highlights for the query "optimization".
"""

from __future__ import annotations

from dataclasses import dataclass

from .tokenize import porter_stem, tokenize, words


@dataclass(frozen=True)
class Snippet:
    """An excerpt with highlight spans over its own text."""

    text: str
    highlights: tuple[tuple[int, int], ...]  # (start, end) char offsets
    leading_ellipsis: bool
    trailing_ellipsis: bool

    def marked(self, open_mark: str = "[", close_mark: str = "]") -> str:
        """The excerpt with highlight markers inserted (for terminals)."""
        out: list[str] = []
        cursor = 0
        for start, end in self.highlights:
            out.append(self.text[cursor:start])
            out.append(open_mark + self.text[start:end] + close_mark)
            cursor = end
        out.append(self.text[cursor:])
        body = "".join(out)
        prefix = "... " if self.leading_ellipsis else ""
        suffix = " ..." if self.trailing_ellipsis else ""
        return prefix + body + suffix


def make_snippet(
    text: str,
    query: str,
    *,
    window: int = 30,
) -> Snippet:
    """Build a query-biased snippet of about *window* words.

    Falls back to the document head when no query term occurs.
    """
    query_stems = set(tokenize(query))
    # Token spans over the original text.
    spans: list[tuple[str, int, int]] = []
    import re
    for match in re.finditer(r"[A-Za-z0-9]+", text):
        spans.append((match.group().lower(), match.start(), match.end()))
    if not spans:
        return Snippet(text[:200], (), False, len(text) > 200)

    is_hit = [porter_stem(w) in query_stems for w, _s, _e in spans]

    # Densest window of `window` tokens by hit count (earliest wins ties).
    best_start, best_hits = 0, -1
    running = sum(is_hit[:window])
    best_hits = running
    for start in range(1, max(1, len(spans) - window + 1)):
        running += (is_hit[start + window - 1] if start + window - 1 < len(spans) else 0)
        running -= is_hit[start - 1]
        if running > best_hits:
            best_hits, best_start = running, start

    chunk = spans[best_start: best_start + window]
    chunk_start = chunk[0][1]
    chunk_end = chunk[-1][2]
    excerpt = text[chunk_start:chunk_end]
    highlights = tuple(
        (s - chunk_start, e - chunk_start)
        for (w, s, e), hit in zip(spans[best_start: best_start + window],
                                  is_hit[best_start: best_start + window])
        if hit
    )
    return Snippet(
        text=excerpt,
        highlights=highlights,
        leading_ellipsis=best_start > 0,
        trailing_ellipsis=best_start + window < len(spans),
    )


def title_or_url(title: str | None, url: str) -> str:
    """Display line for a hit (mirrors what the applet's search tab shows)."""
    return title if title else url


__all__ = ["Snippet", "make_snippet", "title_or_url", "words"]
