"""Sparse document vectors: term counts, TF-IDF, cosine similarity.

All mining code shares this one representation: a document is a dict
``{term_id: weight}``.  Sparse dicts beat numpy arrays here because Web
vocabularies are huge and bookmark pages are short — exactly the regime
the paper's Berkeley-DB "term-level statistics" store targets.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .tokenize import tokenize
from .vocabulary import Vocabulary

SparseVector = dict[int, float]


def count_vector(vocab: Vocabulary, terms: Iterable[str]) -> SparseVector:
    """Raw term-count vector; unseen terms on a frozen vocabulary are skipped."""
    counts: SparseVector = {}
    for term in terms:
        tid = vocab.id(term) if vocab.frozen else vocab.add(term)
        if tid is not None:
            counts[tid] = counts.get(tid, 0.0) + 1.0
    return counts


def text_vector(vocab: Vocabulary, text: str) -> SparseVector:
    """Tokenize *text* and return its count vector."""
    return count_vector(vocab, tokenize(text))


def tfidf(vocab: Vocabulary, counts: SparseVector) -> SparseVector:
    """Log-TF x smoothed-IDF weighting."""
    return {
        tid: (1.0 + math.log(tf)) * vocab.idf(tid)
        for tid, tf in counts.items()
        if tf > 0
    }


def norm(vec: SparseVector) -> float:
    # Scale by the largest magnitude before squaring: weights below
    # ~1e-154 square into subnormals (or underflow to 0.0 outright) and
    # the naive sum-of-squares loses all precision.
    scale = max((abs(w) for w in vec.values()), default=0.0)
    if scale == 0.0:
        return 0.0
    return scale * math.sqrt(sum((w / scale) ** 2 for w in vec.values()))


def normalize(vec: SparseVector) -> SparseVector:
    """Unit-length copy of *vec* (empty vectors come back empty)."""
    scale = max((abs(w) for w in vec.values()), default=0.0)
    if scale == 0.0:
        return {}
    # Pre-divide by the max magnitude so the norm of the scaled vector
    # is computed in a well-conditioned range (see ``norm``).
    scaled = {tid: w / scale for tid, w in vec.items()}
    n = math.sqrt(sum(w * w for w in scaled.values()))
    return {tid: w / n for tid, w in scaled.items()}


def dot(a: SparseVector, b: SparseVector) -> float:
    if len(a) > len(b):
        a, b = b, a
    return sum(w * b[tid] for tid, w in a.items() if tid in b)


def cosine(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity in [0, 1] for non-negative vectors."""
    ua, ub = normalize(a), normalize(b)
    if not ua or not ub:
        return 0.0
    # Dot of unit vectors: ``dot(a, b) / (norm(a) * norm(b))`` would
    # underflow the denominator to 0.0 when both vectors are tiny.
    return min(dot(ua, ub), 1.0)


def add(a: SparseVector, b: SparseVector, *, scale: float = 1.0) -> SparseVector:
    """Return ``a + scale * b`` as a new vector."""
    out = dict(a)
    for tid, w in b.items():
        out[tid] = out.get(tid, 0.0) + scale * w
    return out


def centroid(vectors: list[SparseVector]) -> SparseVector:
    """Arithmetic mean of sparse vectors (empty list -> empty vector)."""
    if not vectors:
        return {}
    total: SparseVector = {}
    for vec in vectors:
        for tid, w in vec.items():
            total[tid] = total.get(tid, 0.0) + w
    k = float(len(vectors))
    return {tid: w / k for tid, w in total.items()}


def top_terms(vocab: Vocabulary, vec: SparseVector, k: int = 10) -> list[str]:
    """The k highest-weighted terms of *vec*, as strings (for labels)."""
    best = sorted(vec.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
    return [vocab.term(tid) for tid, _ in best]
