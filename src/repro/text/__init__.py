"""Text substrate: tokenization, vocabulary, vectors, index, search."""

from .index import InvertedIndex
from .query import (
    QueryParseError,
    evaluate,
    parse_query,
    ranked_boolean_search,
)
from .search import SearchEngine, SearchHit
from .snippets import Snippet, make_snippet
from .tokenize import STOPWORDS, porter_stem, tokenize, words
from .vectorize import (
    SparseVector,
    add,
    centroid,
    cosine,
    count_vector,
    dot,
    norm,
    normalize,
    text_vector,
    tfidf,
    top_terms,
)
from .vocabulary import Vocabulary

__all__ = [
    "STOPWORDS",
    "InvertedIndex",
    "QueryParseError",
    "SearchEngine",
    "SearchHit",
    "Snippet",
    "SparseVector",
    "Vocabulary",
    "evaluate",
    "make_snippet",
    "parse_query",
    "ranked_boolean_search",
    "add",
    "centroid",
    "cosine",
    "count_vector",
    "dot",
    "norm",
    "normalize",
    "porter_stem",
    "text_vector",
    "tfidf",
    "tokenize",
    "top_terms",
    "words",
]
