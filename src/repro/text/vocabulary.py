"""Term dictionary with document frequencies.

Maps string terms to dense integer ids (the representation every mining
algorithm downstream wants) and tracks document frequencies for TF-IDF and
feature selection.  A vocabulary can be *frozen* once models are trained on
it, after which unseen terms map to ``None`` instead of allocating ids —
this is what keeps a trained classifier's feature space stable while the
crawler keeps producing new pages.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable

from ..errors import VocabularyFrozen


class Vocabulary:
    """Bidirectional term <-> id map with document-frequency counts."""

    def __init__(self) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        self._doc_freq: list[int] = []
        self._num_docs = 0
        self._frozen = False

    # -- growth --------------------------------------------------------------

    def add(self, term: str) -> int | None:
        """Intern *term*, returning its id (None when frozen and unseen)."""
        tid = self._term_to_id.get(term)
        if tid is not None:
            return tid
        if self._frozen:
            return None
        tid = len(self._id_to_term)
        self._term_to_id[term] = tid
        self._id_to_term.append(term)
        self._doc_freq.append(0)
        return tid

    def add_document(self, terms: Iterable[str]) -> dict[int, int]:
        """Intern a document's terms; returns ``{term_id: term_count}`` and
        updates document frequencies (each distinct term counted once)."""
        counts: dict[int, int] = {}
        for term in terms:
            tid = self.add(term)
            if tid is not None:
                counts[tid] = counts.get(tid, 0) + 1
        for tid in counts:
            self._doc_freq[tid] += 1
        self._num_docs += 1
        return counts

    def freeze(self) -> None:
        """Stop allocating ids for new terms."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- lookup ----------------------------------------------------------------

    def id(self, term: str) -> int | None:
        return self._term_to_id.get(term)

    def term(self, tid: int) -> str:
        return self._id_to_term[tid]

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    @property
    def num_docs(self) -> int:
        return self._num_docs

    def doc_freq(self, tid: int) -> int:
        return self._doc_freq[tid]

    def idf(self, tid: int) -> float:
        """Smoothed inverse document frequency."""
        return math.log((1 + self._num_docs) / (1 + self._doc_freq[tid])) + 1.0

    def terms(self) -> list[str]:
        return list(self._id_to_term)

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "terms": self._id_to_term,
            "doc_freq": self._doc_freq,
            "num_docs": self._num_docs,
            "frozen": self._frozen,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Vocabulary":
        vocab = cls()
        vocab._id_to_term = list(payload["terms"])
        vocab._term_to_id = {t: i for i, t in enumerate(vocab._id_to_term)}
        vocab._doc_freq = list(payload["doc_freq"])
        vocab._num_docs = int(payload["num_docs"])
        vocab._frozen = bool(payload["frozen"])
        if len(vocab._doc_freq) != len(vocab._id_to_term):
            raise VocabularyFrozen("corrupt vocabulary payload")  # pragma: no cover
        return vocab

    def dumps(self) -> bytes:
        return json.dumps(self.to_dict()).encode("utf-8")

    @classmethod
    def loads(cls, raw: bytes) -> "Vocabulary":
        return cls.from_dict(json.loads(raw.decode("utf-8")))
