"""Boolean query language for the full-text search tab.

Late-90s search front-ends exposed ``AND`` / ``OR`` / ``NOT`` with
parentheses, so the Memex search tab gets the same.  Grammar::

    query   := or
    or      := and ( OR and )*
    and     := unary ( [AND] unary )*        # juxtaposition means AND
    unary   := NOT unary | atom
    atom    := '(' or ')' | term

Terms run through the same tokenizer/stemmer as documents.  Evaluation
returns the matching doc-id set; :func:`ranked_boolean_search` then ranks
the matches with BM25 over the query's positive terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TextError
from .index import InvertedIndex
from .search import SearchEngine, SearchHit
from .tokenize import tokenize


class QueryParseError(TextError):
    """The boolean query was malformed."""


# -- AST ----------------------------------------------------------------------

@dataclass(frozen=True)
class Term:
    term: str  # already stemmed


@dataclass(frozen=True)
class Phrase:
    """Consecutive terms, from a quoted string.  Needs a positional index."""

    terms: tuple[str, ...]  # already stemmed


@dataclass(frozen=True)
class And:
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class Or:
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class Not:
    child: "Node"


Node = Term | Phrase | And | Or | Not


# -- parser ----------------------------------------------------------------------

_KEYWORDS = {"AND", "OR", "NOT"}


def _lex(text: str) -> list[str]:
    tokens: list[str] = []
    word: list[str] = []
    in_quote = False
    for ch in text:
        if ch == '"':
            if in_quote:
                tokens.append('"' + "".join(word) + '"')
                word = []
                in_quote = False
            else:
                if word:
                    tokens.append("".join(word))
                    word = []
                in_quote = True
        elif in_quote:
            word.append(ch)
        elif ch in "()":
            if word:
                tokens.append("".join(word))
                word = []
            tokens.append(ch)
        elif ch.isspace():
            if word:
                tokens.append("".join(word))
                word = []
        else:
            word.append(ch)
    if in_quote:
        raise QueryParseError("unterminated quote")
    if word:
        tokens.append("".join(word))
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.pos += 1
        return token

    def parse(self) -> Node:
        node = self.parse_or()
        if self.peek() is not None:
            raise QueryParseError(f"trailing input at {self.peek()!r}")
        return node

    def parse_or(self) -> Node:
        node = self.parse_and()
        while self.peek() == "OR":
            self.take()
            node = Or(node, self.parse_and())
        return node

    def parse_and(self) -> Node:
        node = self.parse_unary()
        while True:
            nxt = self.peek()
            if nxt == "AND":
                self.take()
                node = And(node, self.parse_unary())
            elif nxt is not None and nxt not in ("OR", ")"):
                node = And(node, self.parse_unary())
            else:
                return node

    def parse_unary(self) -> Node:
        nxt = self.peek()
        if nxt == "NOT":
            self.take()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Node:
        token = self.take()
        if token == "(":
            node = self.parse_or()
            if self.take() != ")":
                raise QueryParseError("missing ')'")
            return node
        if token == ")" or token in _KEYWORDS:
            raise QueryParseError(f"unexpected {token!r}")
        if token.startswith('"') and token.endswith('"'):
            stems = tokenize(token[1:-1])
            if not stems:
                raise QueryParseError("empty phrase")
            if len(stems) == 1:
                return Term(stems[0])
            return Phrase(tuple(stems))
        stems = tokenize(token)
        if not stems:
            # Stopword or punctuation-only term: matches nothing on its
            # own but must not break the query — treat as neutral.
            raise QueryParseError(f"term {token!r} has no indexable content")
        node: Node = Term(stems[0])
        for stem in stems[1:]:
            node = And(node, Term(stem))
        return node


def parse_query(text: str) -> Node:
    """Parse a boolean query string into an AST."""
    tokens = _lex(text)
    if not tokens:
        raise QueryParseError("empty query")
    return _Parser(tokens).parse()


# -- evaluation ---------------------------------------------------------------------

def evaluate(node: Node, index: InvertedIndex) -> set[str]:
    """Doc ids matching the query.  NOT is evaluated against the full
    document set (safe at Memex's per-community scale)."""
    if isinstance(node, Term):
        return set(index.postings(node.term))
    if isinstance(node, Phrase):
        return set(index.phrase_match(list(node.terms)))
    if isinstance(node, And):
        return evaluate(node.left, index) & evaluate(node.right, index)
    if isinstance(node, Or):
        return evaluate(node.left, index) | evaluate(node.right, index)
    if isinstance(node, Not):
        return set(index.document_ids()) - evaluate(node.child, index)
    raise TypeError(f"unknown node {node!r}")


def positive_terms(node: Node) -> list[str]:
    """Terms contributing positively (outside any NOT) — the ranking terms."""
    if isinstance(node, Term):
        return [node.term]
    if isinstance(node, Phrase):
        return list(node.terms)
    if isinstance(node, (And, Or)):
        return positive_terms(node.left) + positive_terms(node.right)
    if isinstance(node, Not):
        return []
    raise TypeError(f"unknown node {node!r}")


def ranked_boolean_search(
    engine: SearchEngine,
    query: str,
    *,
    k: int | None = 10,
) -> list[SearchHit]:
    """Boolean filtering + BM25 ranking over the positive terms
    (``k=None`` returns every boolean match, ranked).

    Queries with no positive term (pure negations) rank by doc id.
    """
    node = parse_query(query)
    # One consistent index view across boolean evaluation and ranking
    # (the index lock is reentrant; engine.search re-pins it).
    with engine.index.lock:
        matches = evaluate(node, engine.index)
        if not matches:
            return []
        terms = positive_terms(node)
        if not terms:
            return [SearchHit(doc_id, 0.0) for doc_id in sorted(matches)][:k]
        hits = engine.search(" ".join(terms), k=len(matches), candidates=matches)
    ranked = {h.doc_id for h in hits}
    # Boolean matches that scored zero (e.g. matched only via OR-branch
    # not in top ranks) still belong in the result set, after ranked ones.
    tail = [SearchHit(d, 0.0) for d in sorted(matches - ranked)]
    return (hits + tail)[:k]
