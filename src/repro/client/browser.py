"""A minimal simulated browser.

Reproduces the client-side reality the paper starts from: the browser has
only a *transient, one-dimensional history list* (§2 — "browsers have only
a transient context"), which is exactly why surfers lose topical context
and why Memex's server-side trail archive is valuable.  The Memex applet
taps :meth:`Browser.navigate` the way the real applet tapped Netscape's
location property.
"""

from __future__ import annotations

from collections.abc import Callable

# Listener signature: (url, referrer, at).
NavigationListener = Callable[[str, str | None, float], None]


class Browser:
    """Navigation with a linear back/forward history.

    Forward history is truncated on a fresh navigation, as in every real
    browser — another way context gets destroyed.
    """

    def __init__(self, *, history_limit: int = 50) -> None:
        self.history_limit = history_limit
        self._history: list[str] = []
        self._cursor = -1
        self._listeners: list[NavigationListener] = []
        self.clock = 0.0

    # -- wiring -----------------------------------------------------------------

    def add_listener(self, listener: NavigationListener) -> None:
        """The Memex applet registers itself here."""
        self._listeners.append(listener)

    # -- navigation ---------------------------------------------------------------

    @property
    def location(self) -> str | None:
        if 0 <= self._cursor < len(self._history):
            return self._history[self._cursor]
        return None

    def navigate(self, url: str, *, at: float | None = None) -> None:
        """Go to *url*, truncating any forward history."""
        if at is not None:
            self.clock = max(self.clock, at)
        referrer = self.location
        del self._history[self._cursor + 1:]
        self._history.append(url)
        if len(self._history) > self.history_limit:
            # The transient history silently forgets the oldest entries.
            drop = len(self._history) - self.history_limit
            del self._history[:drop]
        self._cursor = len(self._history) - 1
        for listener in self._listeners:
            listener(url, referrer, self.clock)

    def back(self) -> str | None:
        """Go back one entry (no listener tap: revisits are not new taps)."""
        if self._cursor > 0:
            self._cursor -= 1
        return self.location

    def forward(self) -> str | None:
        if self._cursor < len(self._history) - 1:
            self._cursor += 1
        return self.location

    def history(self) -> list[str]:
        """The 1-D history list, oldest first."""
        return list(self._history)

    def clear_history(self) -> None:
        """What browsers routinely do — the information loss Memex fixes."""
        current = self.location
        self._history = [current] if current is not None else []
        self._cursor = len(self._history) - 1
