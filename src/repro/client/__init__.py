"""Client substrate: simulated browser and the Memex applet."""

from .applet import (
    ARCHIVE_COMMUNITY,
    ARCHIVE_OFF,
    ARCHIVE_PRIVATE,
    MemexApplet,
)
from .browser import Browser
from .pool import TransportPool

__all__ = [
    "ARCHIVE_COMMUNITY",
    "ARCHIVE_OFF",
    "ARCHIVE_PRIVATE",
    "Browser",
    "MemexApplet",
    "TransportPool",
]
