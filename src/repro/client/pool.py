"""A client-side pool of socket transports for many-user load.

One :class:`~repro.server.transport.SocketTransport` serializes every
user's traffic through one pool of per-user connections; for the
open-loop harness — hundreds of distinct scheduled users, many worker
threads — a single transport's pool lock and the server-side
one-worker-per-connection economics both become the bottleneck.

:class:`TransportPool` spreads users across *size* independent
``SocketTransport`` instances by a **stable** hash of the user id
(crc32 — builtin ``hash()`` is salted per process and would re-shuffle
users every run), each capped to ``max_pooled`` per-user connections
(LRU; see the transport's docstring).  Total sockets — and therefore
server worker threads held — are bounded by ``size * max_pooled``
regardless of how many users the schedule touches.

The pool satisfies the client :class:`~repro.server.transport.Transport`
protocol, so applets and the load runner use it interchangeably with a
bare transport.  It also fans the ``drop_connections`` chaos hook out
to every member, which is what the chaos controller calls.
"""

from __future__ import annotations

import zlib
from typing import Any

from ..server.transport import SocketTransport


class TransportPool:
    """*size* independent socket transports to one address, user-sharded.

    Extra keyword arguments are forwarded to every member
    ``SocketTransport`` (timeouts, backoff tuning, ...).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int = 4,
        max_pooled: int = 32,
        **transport_kwargs: Any,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.transports = [
            SocketTransport(host, port, max_pooled=max_pooled, **transport_kwargs)
            for _ in range(size)
        ]

    def _member(self, user_id: str) -> SocketTransport:
        """The member transport owning *user_id* — stable across
        processes and runs (crc32, never the salted builtin hash)."""
        digest = zlib.crc32(user_id.encode("utf-8"))
        return self.transports[digest % len(self.transports)]

    # -- Transport protocol ---------------------------------------------------

    def request(self, user_id: str, payload: dict[str, Any]) -> dict[str, Any]:
        return self._member(user_id).request(user_id, payload)

    def request_batch(
        self, user_id: str, payloads: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        return self._member(user_id).request_batch(user_id, payloads)

    def set_key(self, user_id: str, key: bytes | None) -> None:
        self._member(user_id).set_key(user_id, key)

    def key_for(self, user_id: str) -> bytes | None:
        return self._member(user_id).key_for(user_id)

    # -- lifecycle / chaos ----------------------------------------------------

    def drop_connections(self, *, half_close: bool = False) -> int:
        """Sever every pooled connection across all members (chaos
        hook); returns the total number hit."""
        return sum(
            t.drop_connections(half_close=half_close) for t in self.transports
        )

    def reset_backoff(self) -> None:
        for t in self.transports:
            t.reset_backoff()

    def close(self) -> None:
        for t in self.transports:
            t.close()

    def __enter__(self) -> "TransportPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def bytes_in(self) -> int:
        return sum(t.bytes_in for t in self.transports)

    @property
    def bytes_out(self) -> int:
        return sum(t.bytes_out for t in self.transports)
