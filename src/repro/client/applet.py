"""The Memex client applet.

§2's client: it taps the browser for the current location, respects the
user's archive mode locally (an ``off`` mode means the URL never leaves
the machine), and exposes the function tabs — folder management, trail
replay, search — as methods that tunnel requests to the server.

Ingest batching: with ``batch_size > 1`` the applet buffers archive
events (``record_visit`` / ``bookmark``) and ships them as ONE framed
``batch`` envelope — one encode, one decode, one dispatch, one storage
group commit server-side.  The buffer flushes when it reaches
``batch_size``, before any synchronous UI call (``search``, folder views,
… — every tunneled request), and explicitly via :meth:`flush`.  The
default ``batch_size=0`` keeps the historical one-request-per-event
behaviour bit-for-bit.

Trace propagation: give the applet a :class:`repro.obs.Tracer` and every
tunneled request opens a ``client.<servlet>`` root span whose context is
stamped onto the request as a ``traceparent`` field (per-item inside
batch envelopes).  The server joins that trace, so a single applet click
is attributable through servlets, storage, and the daemons it triggers.
Without a tracer nothing is stamped and the wire format is unchanged.
"""

from __future__ import annotations

from typing import Any

from ..errors import CODE_UNKNOWN_USER, AuthError, MemexError
from ..obs import Tracer, null_tracer
from ..server.transport import Transport
from .browser import Browser

ARCHIVE_OFF = "off"
ARCHIVE_PRIVATE = "private"
ARCHIVE_COMMUNITY = "community"


class MemexApplet:
    """One user's client session.

    Parameters
    ----------
    transport:
        Any wire to a Memex server — the in-process HTTP tunnel or the
        TCP socket client; the applet is identical above either.
    user_id:
        Who is logged in.
    browser:
        The browser being tapped; may be None for headless replay.
    tracer:
        Client-side tracer; its spans' contexts ride the wire as
        ``traceparent`` fields.  Defaults to the disabled tracer (no
        spans, nothing stamped).
    """

    def __init__(
        self,
        transport: Transport,
        user_id: str,
        *,
        browser: Browser | None = None,
        session_id: int = 1,
        batch_size: int = 0,
        tracer: Tracer | None = None,
    ) -> None:
        self.transport = transport
        self.user_id = user_id
        self.browser = browser
        self.tracer = tracer if tracer is not None else null_tracer()
        self.archive_mode = ARCHIVE_COMMUNITY
        self.session_id = session_id
        self.batch_size = batch_size
        self.dropped_events = 0  # visits not archived because mode was off
        self.batched_events = 0  # events that rode a batch frame
        self._pending: list[dict[str, Any]] = []
        if browser is not None:
            browser.add_listener(self._on_navigate)

    # -- plumbing -----------------------------------------------------------------

    @staticmethod
    def _raise_for_error(servlet: str, response: dict[str, Any]) -> None:
        """Typed-error dispatch: codes, not message substrings."""
        if response.get("status") == "ok":
            return
        error = response.get("error", "unknown server error")
        if response.get("error_code") == CODE_UNKNOWN_USER:
            raise AuthError(error)
        raise MemexError(f"servlet {servlet!r} failed: {error}")

    def _call(self, servlet: str, **kwargs: Any) -> dict[str, Any]:
        # Any synchronous call flushes buffered archive events first, so
        # the server sees this user's events in the order they happened.
        self.flush()
        request = {"servlet": servlet, **kwargs}
        with self.tracer.span(f"client.{servlet}") as span:
            ctx = span.context()
            if ctx is not None:
                request["traceparent"] = ctx.to_traceparent()
            response = self.transport.request(self.user_id, request)
        self._raise_for_error(servlet, response)
        return response

    def _enqueue(self, request: dict[str, Any]) -> None:
        """Buffer one archive event; flush when the buffer is full.

        When tracing, each buffered event gets its own (instant) client
        span whose context is stamped on the item — the causal origin is
        the user action, not the later flush that happens to carry it.
        """
        with self.tracer.span(f"client.{request['servlet']}") as span:
            ctx = span.context()
            if ctx is not None:
                request["traceparent"] = ctx.to_traceparent()
        self._pending.append(request)
        self.batched_events += 1
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> list[dict[str, Any]]:
        """Ship buffered archive events as one batch frame.

        Returns the per-item responses.  Item failures are surfaced after
        the whole batch is accounted for: an ``unknown_user`` item raises
        :class:`AuthError`, any other failed item raises
        :class:`MemexError` naming the failure count.
        """
        if not self._pending:
            return []
        batch, self._pending = self._pending, []
        with self.tracer.span("client.flush") as span:
            span.set("items", len(batch))
            responses = self.transport.request_batch(self.user_id, batch)
        failed = [
            (req, resp) for req, resp in zip(batch, responses)
            if resp.get("status") != "ok"
        ]
        if failed:
            req, resp = failed[0]
            if resp.get("error_code") == CODE_UNKNOWN_USER:
                raise AuthError(resp.get("error", "unknown user"))
            raise MemexError(
                f"{len(failed)}/{len(batch)} batched events failed; first: "
                f"servlet {req.get('servlet')!r}: "
                f"{resp.get('error', 'unknown server error')}"
            )
        return responses

    @property
    def pending_events(self) -> int:
        """How many archive events are buffered and not yet shipped."""
        return len(self._pending)

    # -- archive-mode control (Figure 1's three choices) -----------------------------

    def set_archive_mode(self, mode: str) -> None:
        """Switch between ``off``/``private``/``community`` archiving.

        Enforced locally first — in ``off`` mode URLs never leave the
        machine, so the server is only told about the non-off modes.
        Raises :class:`MemexError` on an unknown mode.
        """
        if mode not in (ARCHIVE_OFF, ARCHIVE_PRIVATE, ARCHIVE_COMMUNITY):
            raise MemexError(f"unknown archive mode {mode!r}")
        self.archive_mode = mode
        if mode != ARCHIVE_OFF:
            self._call("set_archive_mode", mode=mode)

    # -- browser tap ---------------------------------------------------------------------

    def _on_navigate(self, url: str, referrer: str | None, at: float) -> None:
        self.record_visit(url, referrer=referrer, at=at)

    def record_visit(
        self,
        url: str,
        *,
        at: float,
        referrer: str | None = None,
        session_id: int | None = None,
    ) -> bool:
        """Archive one visit; returns False when mode is off (nothing sent).

        With batching enabled the event is buffered (returns True once
        accepted locally) and ships on the next flush.
        """
        if self.archive_mode == ARCHIVE_OFF:
            self.dropped_events += 1
            return False
        request = {
            "servlet": "visit",
            "url": url,
            "at": at,
            "referrer": referrer,
            "session_id": session_id if session_id is not None else self.session_id,
        }
        if self.batch_size > 1:
            self._enqueue(request)
        else:
            self._call(
                "visit",
                url=url,
                at=at,
                referrer=referrer,
                session_id=request["session_id"],
            )
        return True

    def new_session(self) -> int:
        """Start a new browsing session (the 30-minute-gap boundary the
        trail and context tabs segment on); returns the new session id."""
        self.session_id += 1
        return self.session_id

    def import_history(self, entries: list[dict[str, Any]]) -> dict[str, int]:
        """Bulk-import a raw browser history (``[{url, at, referrer?}]``).

        The server reconstructs sessions with the 30-minute gap rule so
        context recall works on pre-Memex history.  Respects archive-off.
        """
        if self.archive_mode == ARCHIVE_OFF:
            self.dropped_events += len(entries)
            return {"imported": 0, "sessions_assigned": 0}
        response = self._call("import_history", entries=entries)
        return {
            "imported": response["imported"],
            "sessions_assigned": response["sessions_assigned"],
        }

    # -- folder tab -----------------------------------------------------------------------

    def create_folder(self, path: str, *, at: float = 0.0) -> None:
        """Create a topic folder (``"Music/Classical"`` creates missing
        ancestors too); idempotent for existing folders."""
        self._call("folder_create", path=path, at=at)

    def bookmark(self, url: str, folder_path: str, *, at: float) -> None:
        """Deliberately file the URL into a folder while surfing."""
        if self.archive_mode == ARCHIVE_OFF:
            self.dropped_events += 1
            return
        if self.batch_size > 1:
            self._enqueue({
                "servlet": "bookmark",
                "url": url, "folder_path": folder_path, "at": at,
            })
        else:
            self._call("bookmark", url=url, folder_path=folder_path, at=at)

    def move_bookmark(
        self, url: str, from_folder: str | None, to_folder: str, *, at: float
    ) -> None:
        """Cut/paste correction — reinforces or corrects the classifier."""
        self._call(
            "folder_move", url=url,
            from_folder=from_folder, to_folder=to_folder, at=at,
        )

    def folder_view(self) -> dict[str, Any]:
        """The folder tab's data: folders, items, and '?' guesses."""
        return self._call("folders_get")

    def import_bookmarks(self, folders: dict[str, list[dict]], *, at: float = 0.0) -> int:
        """Push an imported browser bookmark structure to the server.

        *folders* maps folder path -> list of ``{url, title}`` dicts (use
        :mod:`repro.folders.importer` to produce it from real files).
        """
        count = 0
        for path, entries in folders.items():
            self.create_folder(path, at=at)
            for entry in entries:
                self._call(
                    "bookmark", url=entry["url"],
                    folder_path=path, at=entry.get("added_at", at),
                )
                count += 1
        return count

    # -- trail tab --------------------------------------------------------------------------

    def trail_view(
        self, folder_path: str, *, window_days: float = 14.0,
    ) -> dict[str, Any]:
        """Replay the community's recent trail graph for a topic folder."""
        return self._call("trail", folder_path=folder_path, window_days=window_days)

    def context_view(self, folder_path: str) -> dict[str, Any]:
        """'What was I doing last time I surfed about this topic?'"""
        return self._call("context", folder_path=folder_path)

    # -- search tab --------------------------------------------------------------------------

    def search(
        self,
        query: str,
        *,
        k: int = 10,
        scope: str = "all",
        mode: str = "ranked",
        limit: int | None = None,
        offset: int = 0,
    ) -> list[dict[str, Any]]:
        """Full-text search over archived pages.

        ``scope``: all | mine | community.  ``mode``: ranked (BM25) or
        boolean (AND/OR/NOT with parentheses, BM25-ranked matches).
        Each hit carries a query-biased ``snippet`` with [marked] terms.

        ``limit``/``offset`` paginate: ``limit`` defaults to ``k`` (the
        historical page size) and ``offset=0`` keeps old calls unchanged.
        Use :meth:`search_page` for the pagination metadata
        (``total``/``has_more``).
        """
        return self.search_page(
            query, limit=limit if limit is not None else k,
            offset=offset, scope=scope, mode=mode,
        )["hits"]

    def search_page(
        self,
        query: str,
        *,
        limit: int = 10,
        offset: int = 0,
        scope: str = "all",
        mode: str = "ranked",
    ) -> dict[str, Any]:
        """One page of search results plus pagination metadata:
        ``{"hits": [...], "total": N, "has_more": bool, "offset": int}`` —
        million-page archives never ship unbounded result lists."""
        response = self._call(
            "search", query=query, limit=limit, offset=offset,
            scope=scope, mode=mode,
        )
        return {
            "hits": response["hits"],
            "total": response["total"],
            "has_more": response["has_more"],
            "offset": response["offset"],
        }

    def related_pages(self, url: str, *, k: int = 10) -> list[dict[str, Any]]:
        """Pages related to *url* by trail co-visitation and dense textual
        similarity — "people who read this also read".  Requires a server
        built with ``retrieval=True`` (the default)."""
        return self._call("related_pages", url=url, k=k)["related"]

    def recall_url(
        self,
        query: str,
        *,
        around_days_ago: float,
        tolerance_days: float = 45.0,
        k: int = 5,
    ) -> list[dict[str, Any]]:
        """Temporal recall: 'the URL I visited about six months back
        regarding ...'."""
        return self._call(
            "recall", query=query,
            around_days_ago=around_days_ago,
            tolerance_days=tolerance_days, k=k,
        )["hits"]

    # -- community views ----------------------------------------------------------------------

    def themes(self) -> list[dict[str, Any]]:
        """Figure 4's community theme taxonomy, as mined by the theme
        daemon (empty until it has run over enough archived pages)."""
        return self._call("themes_get")["themes"]

    def resources(self, query: str, *, k: int = 10, since_days: float | None = None) -> list[dict[str, Any]]:
        """Fresh/authoritative pages for a topic, from the discovery daemon."""
        return self._call(
            "resources", query=query, k=k, since_days=since_days,
        )["resources"]

    def bill(self, *, days: float, monthly_rate: float = 20.0) -> dict[str, Any]:
        """ISP bill decomposition by topic."""
        return self._call("bill", days=days, monthly_rate=monthly_rate)

    def similar_users(self, *, k: int = 5) -> list[dict[str, Any]]:
        """Top-*k* users by theme-profile similarity (people matching)."""
        return self._call("profile_similar", k=k)["users"]

    def interest_mates(
        self, query: str, *, k: int = 5, exclude_query: str | None = None,
    ) -> list[dict[str, Any]]:
        """'Who shares my interest in X (and is not likely a Y)?'"""
        return self._call(
            "interest_mates", query=query, k=k, exclude_query=exclude_query,
        )["users"]

    def recommendations(self, *, k: int = 10) -> list[dict[str, Any]]:
        """Collaborative recommendations: pages surfed by similar users
        that this user has not seen yet."""
        return self._call("recommend", k=k)["pages"]

    # -- reorganization (§2's proposed topic hierarchies) -------------------------------------

    def propose_organization(
        self, folder_path: str, *, min_cluster: int = 3, max_depth: int = 3,
    ) -> dict[str, Any] | None:
        """Ask the server to propose a topic hierarchy over a folder's
        links; returns the proposal payload (or None for empty folders)."""
        return self._call(
            "propose_hierarchy", folder_path=folder_path,
            min_cluster=min_cluster, max_depth=max_depth,
        )["proposal"]

    def apply_organization(
        self, folder_path: str, proposal: dict[str, Any], *, at: float,
    ) -> int:
        """Accept a proposal: subfolders are created, items re-filed."""
        return self._call(
            "apply_hierarchy", folder_path=folder_path,
            proposal=proposal, at=at,
        )["moved"]

    def popular_near_trail(
        self, folder_path: str, *, k: int = 10, window_days: float = 30.0,
    ) -> list[dict[str, Any]]:
        """'Popular pages in or near my community's recent trail graph'
        (HITS authorities on the trail neighborhood)."""
        return self._call(
            "popular_near_trail", folder_path=folder_path,
            k=k, window_days=window_days,
        )["pages"]
