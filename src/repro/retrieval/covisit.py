"""The co-visitation associative index mined from surf sessions.

"Pages visited in the same session" is the trail-native relevance
signal the paper's whole premise rests on: a surfer who reaches page B
two clicks after page A has asserted a relationship no text similarity
can see.  The miner folds every community-archived session into a
symmetric pair matrix (the relational ``covisits`` table):

* **symmetric counts** — each unordered pair of distinct URLs seen in
  one ``(user, session)`` adds one co-occurrence;
* **exponential decay** — an existing pair's count ages by
  ``exp(-λ·Δt)`` before reinforcement, with λ from a configurable
  half-life, so stale associations fade instead of accreting forever;
* **self-pair exclusion** — revisiting a page inside a session never
  pairs it with itself;
* **compaction** — pairs whose decayed count falls under a floor are
  deleted in bulk every few mining rounds, bounding table growth.

The miner is a plain scheduler daemon (``run_once``), not a versioning
consumer: visits are UI writes tracked by ``ChangeStamps``, and the
mined matrix bumps ``stamps.covisits`` so the related-pages cache
invalidates exactly when new evidence lands.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from ..storage.schema import ARCHIVE_COMMUNITY

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.repository import MemexRepository

#: Default count half-life: two weeks of simulated time.
DEFAULT_HALF_LIFE_S = 14 * 86400.0
#: Decayed pairs below this count are dropped at compaction.
DEFAULT_COMPACT_FLOOR = 0.05
#: Compact every N mining rounds that did work.
COMPACT_EVERY = 16
#: Most recent distinct URLs per session a new visit pairs against.
SESSION_TAIL = 32
#: Concurrently tracked sessions (LRU-bounded; sessions are bursty).
MAX_OPEN_SESSIONS = 2048


def half_life_to_decay(half_life_s: float) -> float:
    """λ such that a count halves every *half_life_s* seconds."""
    return math.log(2.0) / half_life_s if half_life_s > 0 else 0.0


def related_scores(
    repo: "MemexRepository",
    url: str,
    *,
    now: float,
    decay: float,
    k: int | None = None,
) -> list[tuple[str, float]]:
    """Co-visited neighbors of *url*, scored by decayed count, best first.

    Decay is applied at read time too, so a pair reinforced long ago
    ranks below a fresher one even between compactions.
    """
    scored = [
        (other, count * math.exp(-decay * max(now - last_at, 0.0)))
        for other, count, last_at in repo.covisits_for(url)
    ]
    scored.sort(key=lambda t: (-t[1], t[0]))
    return scored[:k] if k is not None else scored


def covisit_evidence(
    repo: "MemexRepository",
    urls: list[str],
    *,
    now: float,
    decay: float,
    k: int = 20,
) -> dict[str, list[tuple[str, float]]]:
    """Per-URL neighbor lists for the classifier's co-visitation channel."""
    return {
        url: related_scores(repo, url, now=now, decay=decay, k=k)
        for url in urls
    }


class CoVisitMinerDaemon:
    """Scheduler daemon: fold new visits into the co-visitation matrix."""

    name = "covisit"

    def __init__(
        self,
        repo: "MemexRepository",
        *,
        clock: Callable[[], float] = time.time,
        half_life_s: float = DEFAULT_HALF_LIFE_S,
        compact_floor: float = DEFAULT_COMPACT_FLOOR,
        session_tail: int = SESSION_TAIL,
    ) -> None:
        self.repo = repo
        self.clock = clock
        self.decay = half_life_to_decay(half_life_s)
        self.compact_floor = compact_floor
        self.session_tail = session_tail
        self._last_visit_id = 0
        # (user, session) -> recent distinct URLs, oldest first.  Kept
        # across ticks so a session spanning two mining rounds still
        # pairs its late visits with its early ones.
        self._tails: OrderedDict[tuple[str, int], list[str]] = OrderedDict()
        self._rounds_since_compact = 0
        self.mined_count = 0
        self.pruned_count = 0
        self._m_pairs = repo.metrics.counter("retrieval.covisit.pairs")

    def run_once(self) -> int:
        last = self._last_visit_id
        rows = self.repo.db.table("visits").select(
            lambda r: r["visit_id"] > last
            and r["archive_mode"] == ARCHIVE_COMMUNITY,
            order_by="visit_id",
        )
        if not rows:
            return 0
        increments: dict[tuple[str, str], float] = {}
        for row in rows:
            self._last_visit_id = max(self._last_visit_id, row["visit_id"])
            key = (row["user_id"], row["session_id"])
            tail = self._tails.get(key)
            if tail is None:
                if len(self._tails) >= MAX_OPEN_SESSIONS:
                    self._tails.popitem(last=False)
                tail = []
                self._tails[key] = tail
            else:
                self._tails.move_to_end(key)
            url = row["url"]
            for other in tail:
                if other == url:  # self-pair exclusion
                    continue
                pair = (url, other) if url < other else (other, url)
                increments[pair] = increments.get(pair, 0.0) + 1.0
            if url in tail:
                tail.remove(url)
            tail.append(url)
            del tail[: -self.session_tail]
        written = self.repo.upsert_covisits(
            increments, now=self.clock(), decay=self.decay,
        )
        self.mined_count += len(rows)
        if written:
            self._m_pairs.inc(written)
        self._rounds_since_compact += 1
        if self._rounds_since_compact >= COMPACT_EVERY:
            self._rounds_since_compact = 0
            self.pruned_count += self.repo.prune_covisits(
                now=self.clock(), decay=self.decay, floor=self.compact_floor,
            )
        return len(rows)
