"""Hybrid retrieval: dense vectors + co-visitation + rank fusion.

Search in the base system is purely lexical (inverted index, BM25).
The paper's premise is that surf *trails* carry signal the text alone
does not; this package adds the two trail/corpus-native signals and the
fusion layer that combines them (DESIGN.md §13):

* :mod:`repro.retrieval.dense` — offline-trained dense document vectors
  (random-projection LSA over our own corpus, no external models)
  behind a small bucketed-cosine ANN index, maintained by a scheduler
  daemon through the versioning coordinator;
* :mod:`repro.retrieval.covisit` — the per-community co-visitation
  matrix mined from session trails (symmetric counts with exponential
  decay, compacted into the relational store);
* :mod:`repro.retrieval.fusion` — reciprocal-rank fusion of the
  lexical, dense, and co-visitation rankings plus the canonical-URL
  normalization the cross-shard merge dedups on.
"""

from .covisit import CoVisitMinerDaemon
from .dense import DenseIndexDaemon, DenseProjector, DenseVectorIndex
from .fusion import canonical_url, rrf_fuse

__all__ = [
    "CoVisitMinerDaemon",
    "DenseIndexDaemon",
    "DenseProjector",
    "DenseVectorIndex",
    "canonical_url",
    "rrf_fuse",
]
