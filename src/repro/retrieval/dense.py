"""Dense document vectors and the bucketed-cosine ANN index.

Dense vectors come from a *deterministic random projection* of the
sparse TF-IDF vectors in :mod:`repro.text.vectorize` — LSA's cheap
cousin (Johnson–Lindenstrauss): each vocabulary term gets a fixed
Rademacher basis row (±1/√d, derived from a SHA-1 of the term id, so
every process agrees without coordination), and a document's dense
vector is the weighted sum of its terms' rows, L2-normalized.  No
external models, no training pass — the "offline training" is the
corpus statistics already folded into the TF-IDF weights.

Serving uses sign-bit locality-sensitive hashing: a handful of fixed
hyperplanes bucket each vector by the sign pattern of its projections.
Queries probe their own bucket plus all Hamming-distance-1 neighbors
and re-rank the survivors by exact cosine; corpora too small for the
buckets to matter fall back to an exact scan, so recall never degrades
below brute force at laptop scale.

The index persists vectors through the ``StorageEngine`` API (one
namespace record per document, via the store's record codec) and is
maintained by :class:`DenseIndexDaemon`, a versioning *consumer* ticked
by the scheduler under the usual quarantine/parole supervision.
"""

from __future__ import annotations

import hashlib
import math
import threading
from typing import TYPE_CHECKING

from ..storage.codec import get_codec
from ..storage.engine import Namespace, StorageEngine

if TYPE_CHECKING:  # pragma: no cover
    from ..server.daemons import PageVectorizer
    from ..storage.repository import MemexRepository

#: Dense dimensionality — small enough that a cosine is ~100 flops.
DENSE_DIMS = 128
#: LSH hyperplane count: 2^12 buckets, probed at Hamming distance ≤ 1.
DENSE_PLANES = 12
#: Below this corpus size the exact scan beats bucket probing anyway.
EXACT_SCAN_THRESHOLD = 256


def _rademacher(seed: str, dims: int) -> list[float]:
    """±1/√dims entries derived from SHA-1 bits of *seed* (stable
    across processes — Python's own ``hash()`` is salted per run)."""
    scale = 1.0 / math.sqrt(dims)
    out: list[float] = []
    counter = 0
    bits: int = 0
    have = 0
    while len(out) < dims:
        if have == 0:
            digest = hashlib.sha1(f"{seed}#{counter}".encode()).digest()
            bits = int.from_bytes(digest, "big")
            have = len(digest) * 8
            counter += 1
        out.append(scale if bits & 1 else -scale)
        bits >>= 1
        have -= 1
    return out


class DenseProjector:
    """Project sparse term-id vectors into a fixed dense space."""

    def __init__(self, dims: int = DENSE_DIMS) -> None:
        self.dims = dims
        self._basis: dict[int, list[float]] = {}

    def _basis_for(self, term_id: int) -> list[float]:
        row = self._basis.get(term_id)
        if row is None:
            row = _rademacher(f"term:{term_id}", self.dims)
            self._basis[term_id] = row
        return row

    def project(self, sparse: dict[int, float]) -> list[float]:
        """Dense, L2-normalized image of a sparse vector (zero stays zero)."""
        vec = [0.0] * self.dims
        for term_id, weight in sparse.items():
            if weight == 0.0:
                continue
            row = self._basis_for(term_id)
            for j in range(self.dims):
                vec[j] += weight * row[j]
        norm = math.sqrt(sum(x * x for x in vec))
        if norm > 0.0:
            vec = [x / norm for x in vec]
        return vec


def _dot(a: list[float], b: list[float]) -> float:
    return sum(x * y for x, y in zip(a, b))


class DenseVectorIndex:
    """Bucketed-cosine ANN over dense vectors, persisted through a store.

    Thread-safe: the daemon adds while servlets query.  The internal
    lock takes the ``index`` rank of ``repro.locks.LOCK_ORDER`` — it
    nests over the kvstore it persists through, never the reverse.
    """

    def __init__(
        self,
        kv: StorageEngine | None = None,
        *,
        dims: int = DENSE_DIMS,
        n_planes: int = DENSE_PLANES,
        prefix: str = "dense",
    ) -> None:
        self.projector = DenseProjector(dims)
        self.dims = dims
        self._planes = [
            _rademacher(f"plane:{i}", dims) for i in range(n_planes)
        ]
        self._ns = Namespace(kv, prefix) if kv is not None else None
        self._codec = get_codec(getattr(kv, "codec", None)) if kv is not None else None
        self._vectors: dict[str, list[float]] = {}
        self._buckets: dict[int, set[str]] = {}
        self._sigs: dict[str, int] = {}
        self._ann_lock = threading.RLock()
        if self._ns is not None:
            self._load()

    def _load(self) -> None:
        assert self._ns is not None and self._codec is not None
        with self._ann_lock:
            for key, raw in self._ns.items():
                url = key.decode("utf-8")
                vec = [float(x) for x in self._codec.decode(raw)["v"]]
                self._place(url, vec)

    def _signature(self, vec: list[float]) -> int:
        sig = 0
        for i, plane in enumerate(self._planes):
            if _dot(vec, plane) >= 0.0:
                sig |= 1 << i
        return sig

    def _place(self, url: str, vec: list[float]) -> None:
        old = self._sigs.get(url)
        if old is not None:
            self._buckets.get(old, set()).discard(url)
        sig = self._signature(vec)
        self._vectors[url] = vec
        self._sigs[url] = sig
        self._buckets.setdefault(sig, set()).add(url)

    # -- maintenance ----------------------------------------------------------

    def add(self, url: str, sparse: dict[int, float]) -> None:
        """Project and index one document (idempotent re-add)."""
        vec = self.projector.project(sparse)
        with self._ann_lock:
            self._place(url, vec)
            if self._ns is not None and self._codec is not None:
                self._ns.put(url.encode("utf-8"), self._codec.encode({"v": vec}))

    def remove(self, url: str) -> bool:
        with self._ann_lock:
            if url not in self._vectors:
                return False
            sig = self._sigs.pop(url)
            self._buckets.get(sig, set()).discard(url)
            del self._vectors[url]
            if self._ns is not None:
                self._ns.discard(url.encode("utf-8"))
            return True

    def __len__(self) -> int:
        with self._ann_lock:
            return len(self._vectors)

    def __contains__(self, url: str) -> bool:
        with self._ann_lock:
            return url in self._vectors

    # -- queries --------------------------------------------------------------

    def query_sparse(
        self,
        sparse: dict[int, float],
        *,
        k: int = 10,
        candidates: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Top-*k* ``(url, cosine)`` for a sparse query vector."""
        return self.query(self.projector.project(sparse), k=k, candidates=candidates)

    def query(
        self,
        vec: list[float],
        *,
        k: int = 10,
        candidates: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        with self._ann_lock:
            pool = self._probe(vec, k)
            scored = [
                (url, _dot(vec, self._vectors[url]))
                for url in pool
                if candidates is None or url in candidates
            ]
        scored.sort(key=lambda t: (-t[1], t[0]))
        return scored[:k]

    def neighbors(self, url: str, *, k: int = 10) -> list[tuple[str, float]]:
        """Nearest indexed documents to an already-indexed one."""
        vec = self.vector(url)
        if vec is None:
            return []
        return [(u, s) for u, s in self.query(vec, k=k + 1) if u != url][:k]

    def vector(self, url: str) -> list[float] | None:
        """The stored unit vector for an indexed document (None if absent)."""
        with self._ann_lock:
            return self._vectors.get(url)

    def _probe(self, vec: list[float], k: int) -> set[str]:
        if len(self._vectors) <= max(EXACT_SCAN_THRESHOLD, 4 * k):
            return set(self._vectors)
        sig = self._signature(vec)
        pool = set(self._buckets.get(sig, ()))
        for bit in range(len(self._planes)):
            pool |= self._buckets.get(sig ^ (1 << bit), set())
        if len(pool) < k:  # sparse buckets: recall beats probe savings
            return set(self._vectors)
        return pool


class DenseIndexDaemon:
    """Consumer: keeps the dense ANN index in step with published pages.

    Mirrors ``IndexerDaemon``: registers as a versioning consumer at
    construction (so read-path caches built later can watch its
    watermark), polls the published prefix each tick, projects every
    fetched page's TF-IDF vector, and acks.
    """

    name = "dense"

    def __init__(
        self,
        repo: "MemexRepository",
        vectorizer: "PageVectorizer",
        index: DenseVectorIndex,
    ) -> None:
        self.repo = repo
        self.vectorizer = vectorizer
        self.index = index
        repo.versions.register_consumer(self.name)
        self.projected_count = 0
        self._m_documents = repo.metrics.counter("retrieval.dense.documents")

    def run_once(self) -> int:
        watermark, urls = self.repo.versions.poll(self.name)
        done = 0
        for url in urls:
            sparse = self.vectorizer.tfidf_vector(url)
            if not sparse:
                continue
            self.index.add(url, sparse)
            done += 1
        self.repo.versions.ack(self.name, watermark)
        self.projected_count += done
        if done:
            self._m_documents.inc(done)
        return done
