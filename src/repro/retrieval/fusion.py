"""Rank fusion and canonical-URL normalization.

Reciprocal-rank fusion (RRF, Cormack et al.) combines rankings from
scorers whose score scales are incomparable — BM25 weights, cosine
similarities, and decayed co-visitation counts here — by discarding the
scores and keeping only the ranks::

    fused(d) = sum over rankings r of  w_r / (k0 + rank_r(d))

``k0`` damps the top-rank dominance (60 is the published default).  A
document missing from a ranking simply contributes nothing for it, so
partial evidence degrades gracefully instead of zeroing the result.

Canonical URLs exist because the same underlying page can reach a
merge point under several spellings: shard-namespaced ids
(``s<shard>/http://...``) from scatter-gather, host-case variants, and
trailing-slash variants.  Fusing or deduplicating on the raw string
double-counts such pages; every cross-source merge in this package keys
on :func:`canonical_url` instead.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from urllib.parse import urlsplit, urlunsplit

RRF_K0 = 60.0

_SHARD_PREFIX = re.compile(r"^s\d+/")
_DEFAULT_PORTS = {"http": ":80", "https": ":443"}


def canonical_url(url: str) -> str:
    """One canonical spelling for every variant of the same page.

    >>> canonical_url("s3/HTTP://A.com:80/x#frag")
    'http://a.com/x'
    >>> canonical_url("http://a.com/x/") == canonical_url("http://a.com/x")
    True
    >>> canonical_url("http://a.com/") == canonical_url("http://a.com")
    True
    """
    url = _SHARD_PREFIX.sub("", url.strip())
    try:
        parts = urlsplit(url)
    except ValueError:
        return url
    if not parts.scheme:
        return url
    scheme = parts.scheme.lower()
    netloc = parts.netloc.lower()
    default = _DEFAULT_PORTS.get(scheme)
    if default and netloc.endswith(default):
        netloc = netloc[: -len(default)]
    path = parts.path
    if path.endswith("/"):
        path = path.rstrip("/")
    return urlunsplit((scheme, netloc, path, parts.query, ""))


def rrf_fuse(
    rankings: Sequence[tuple[float, Iterable[str]]],
    *,
    k0: float = RRF_K0,
    key: "callable | None" = None,
) -> list[tuple[str, float]]:
    """Fuse weighted rankings; returns ``[(id, fused_score), ...]``.

    Each entry of *rankings* is ``(weight, ids_best_first)``.  When
    *key* is given, ids mapping to the same key are treated as one
    document (first spelling seen wins) — this is where hybrid search
    folds URL variants together *before* anything is counted.

    >>> rrf_fuse([(1.0, ["a", "b"]), (1.0, ["b", "c"])], k0=0.0)
    [('b', 1.5), ('a', 1.0), ('c', 0.5)]
    """
    scores: dict[str, float] = {}
    spelling: dict[str, str] = {}
    for weight, ids in rankings:
        if weight <= 0.0:
            continue
        seen: set[str] = set()
        rank = 0
        for doc_id in ids:
            k = key(doc_id) if key is not None else doc_id
            if k in seen:
                continue
            seen.add(k)
            rank += 1
            spelling.setdefault(k, doc_id)
            scores[k] = scores.get(k, 0.0) + weight / (k0 + rank)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(spelling[k], score) for k, score in ranked]
