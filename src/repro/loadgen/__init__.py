"""Open-loop load generation and chaos injection for the Memex server.

The macro-scale harness ROADMAP item 5 calls for: a Zipfian population
scaled toward 10^6 sparse-activity users (``repro.webgen.population``)
is compiled into a deterministic request schedule (``schedule``),
offered to a real socket deployment at its own pace (``runner`` —
open-loop, latency measured from the scheduled instant), optionally
while faults fire mid-run (``chaos``), and summarised into publishable
reports with p99 and burn-rate gates (``report``).

Entry points: ``python -m repro loadgen`` (CLI),
``benchmarks/test_bench_load.py`` (publishes ``BENCH_load.json``), and
docs/OPERATIONS.md for running it against a live cluster.
"""

from .chaos import ACTIONS, ChaosController, ChaosEvent, parse_chaos
from .report import (
    assert_p99,
    build_report,
    burn_rate_ok,
    burn_rates,
    latency_summary,
    metrics_delta,
    render_report,
)
from .runner import OpenLoopRunner, RunResult
from .schedule import (
    DEFAULT_MIX,
    KINDS,
    LoadSchedule,
    ScheduledRequest,
    build_schedule,
    merge_schedules,
)

__all__ = [
    "ACTIONS",
    "ChaosController",
    "ChaosEvent",
    "DEFAULT_MIX",
    "KINDS",
    "LoadSchedule",
    "OpenLoopRunner",
    "RunResult",
    "ScheduledRequest",
    "assert_p99",
    "build_report",
    "build_schedule",
    "burn_rate_ok",
    "burn_rates",
    "latency_summary",
    "merge_schedules",
    "metrics_delta",
    "parse_chaos",
    "render_report",
]
