"""Run reports and gates: shape a :class:`RunResult` for publication.

The report is the JSON the bench files publish (``BENCH_load.json``)
and the CLI prints: offered vs achieved rate, shed count, per-kind
latency percentiles from the runner's client-side histograms, error and
retry counts, and — when the server's ``health`` servlet payload is
passed in — the server-side SLO view (p95 and error-budget burn rates
from the PR 4 health layer).

Two gates turn a report into a pass/fail:

* :func:`assert_p99` — client-observed p99 for a kind under a bound;
* :func:`burn_rate_ok` — no servlet SLO is burning its error budget at
  :data:`~repro.obs.health.FAST_BURN` in both windows (the same
  condition the health engine calls ``breach``, minus the latency
  clause: an overload run legitimately pushes p95 past the default
  100 ms target on shared hardware, but error-budget burn means
  *failed* requests, which the harness never tolerates).
"""

from __future__ import annotations

from typing import Any

from ..obs.health import FAST_BURN
from ..obs.metrics import diff_snapshots, summarize_histogram_raw
from .runner import RunResult

PERCENTILE_KEYS = ("p50", "p95", "p99")

#: Counter prefixes worth publishing in the server-side delta (the full
#: snapshot has hundreds of instruments; the report keeps the ones a
#: load run actually interrogates).
_DELTA_PREFIXES = (
    "server.servlets.",
    "server.crawler.",
    "server.indexer.",
    "storage.relational.commits",
    "storage.kvstore.",
    "storage.lsm.",
    "cache.",
    "shard.",
)


def metrics_delta(
    before: dict[str, Any] | None,
    after: dict[str, Any] | None,
) -> dict[str, Any] | None:
    """Server-side work done during the run, from two ``metrics_pull``
    responses taken before and after.

    Counters are after-minus-before (clamped at zero across restarts);
    servlet latency histograms are differenced bucket-wise and
    summarized, so the published p50/p99 covers *only* requests served
    inside the window — unlike the cumulative ``stats`` view.  Returns
    ``None`` unless both pulls carry a merged ``metrics`` payload.
    """
    if not before or not after:
        return None
    b, a = before.get("metrics"), after.get("metrics")
    if not isinstance(b, dict) or not isinstance(a, dict):
        return None
    delta = diff_snapshots(b, a)
    counters = {
        name: value
        for name, value in sorted(delta.get("counters", {}).items())
        if value and name.startswith(_DELTA_PREFIXES)
    }
    latency = {}
    for name, raw in sorted(delta.get("histograms", {}).items()):
        if not name.startswith("server.servlets.latency") or not raw["count"]:
            continue
        summary = summarize_histogram_raw(raw)
        latency[name] = {
            "count": summary["count"],
            "p50": round(summary["p50"], 6),
            "p99": round(summary["p99"], 6),
        }
    out: dict[str, Any] = {"counters": counters, "latency": latency}
    by_before = before.get("by_shard") or {}
    by_after = after.get("by_shard") or {}
    by_shard: dict[str, Any] = {}
    for shard in sorted(by_after):
        b_shard = (by_before.get(shard) or {}).get("metrics")
        a_shard = (by_after.get(shard) or {}).get("metrics")
        if not isinstance(a_shard, dict):
            continue
        shard_delta = diff_snapshots(
            b_shard if isinstance(b_shard, dict) else {"counters": {}},
            a_shard,
        )
        by_shard[shard] = {
            "requests": sum(
                v for k, v in shard_delta.get("counters", {}).items()
                if k.startswith("server.servlets.requests")
            ),
            "errors": sum(
                v for k, v in shard_delta.get("counters", {}).items()
                if k.startswith("server.servlets.errors")
            ),
        }
    if by_shard:
        out["by_shard"] = by_shard
    return out


def latency_summary(result: RunResult) -> dict[str, dict[str, float]]:
    """Per-kind ``{count, mean, p50, p95, p99, max}`` from the runner's
    histograms (kinds that never fired are omitted)."""
    out: dict[str, dict[str, float]] = {}
    for kind in sorted(result.latency):
        hist = result.latency[kind]
        if not hist.count:
            continue
        summary = hist.summary()
        out[kind] = {
            "count": summary["count"],
            "mean": round(summary["mean"], 6),
            "p50": round(summary["p50"], 6),
            "p95": round(summary["p95"], 6),
            "p99": round(summary["p99"], 6),
            "max": round(summary["max"], 6),
        }
    return out


def build_report(
    result: RunResult,
    *,
    label: str = "",
    offered_rate: float = 0.0,
    health: dict[str, Any] | None = None,
    chaos: list[dict[str, Any]] | None = None,
    metrics_before: dict[str, Any] | None = None,
    metrics_after: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The publishable view of one run.

    ``metrics_before``/``metrics_after`` are ``metrics_pull`` responses
    bracketing the run; when both are given the report carries a
    ``server_metrics`` delta (see :func:`metrics_delta`).
    """
    report: dict[str, Any] = {
        "label": label,
        "duration_s": round(result.duration, 3),
        "offered_requests": result.offered,
        "offered_rate": round(offered_rate, 3),
        "achieved_rate": round(result.achieved_rate, 3),
        "sent": result.sent,
        "shed": result.shed,
        "errors": {k: v for k, v in sorted(result.errors.items()) if v},
        "total_errors": result.total_errors,
        "retries": result.retries,
        "acked_visits": result.total_acked,
        "registered_users": result.registered,
        "latency": latency_summary(result),
    }
    if health is not None:
        report["server_slos"] = {
            name: {
                "status": slo.get("status"),
                "p95": slo.get("p95"),
                "burn_short": slo.get("burn_short"),
                "burn_long": slo.get("burn_long"),
                "error_rate_short": slo.get("error_rate_short"),
            }
            for name, slo in sorted((health.get("slos") or {}).items())
        }
        report["server_health"] = health.get("health")
    delta = metrics_delta(metrics_before, metrics_after)
    if delta is not None:
        report["server_metrics"] = delta
    if chaos is not None:
        report["chaos"] = [
            {
                "at": rec["event"].at,
                "action": rec["event"].action,
                "shard": rec["event"].shard,
                "elapsed": round(rec["elapsed"], 3),
                "detail": rec.get("detail"),
                "error": rec.get("error"),
            }
            for rec in chaos
        ]
    return report


def assert_p99(
    report: dict[str, Any], kind: str, limit: float,
) -> None:
    """Gate: client-observed p99 latency for *kind* must be under
    *limit* seconds.  Raises ``AssertionError`` with the measured value
    (reports should be published *before* gating, so a failed gate
    still leaves the curve on disk)."""
    latency = report.get("latency", {}).get(kind)
    assert latency is not None, f"no {kind!r} latency in report {report.get('label')!r}"
    assert latency["p99"] < limit, (
        f"{report.get('label')}: {kind} p99 {latency['p99']:.4f}s "
        f"exceeds gate {limit:.4f}s"
    )


def burn_rates(health: dict[str, Any]) -> dict[str, tuple[float, float]]:
    """Per-SLO ``(burn_short, burn_long)`` from a health payload."""
    return {
        name: (
            float(slo.get("burn_short", 0.0)),
            float(slo.get("burn_long", 0.0)),
        )
        for name, slo in sorted((health.get("slos") or {}).items())
    }


def burn_rate_ok(
    health: dict[str, Any], *, limit: float = FAST_BURN,
) -> bool:
    """True iff no servlet SLO burns its error budget at ≥ *limit* in
    **both** windows (the health engine's fast-burn breach condition)."""
    return all(
        not (short >= limit and long >= limit)
        for short, long in burn_rates(health).values()
    )


def render_report(report: dict[str, Any]) -> str:
    """Aligned text rendering for ``repro loadgen``."""
    lines = [
        f"run: {report.get('label') or '(unlabelled)'}",
        f"  duration      {report['duration_s']:.1f}s",
        f"  offered rate  {report['offered_rate']:.1f} req/s"
        f"  (achieved {report['achieved_rate']:.1f})",
        f"  sent/shed     {report['sent']}/{report['shed']}",
        f"  errors        {report['total_errors']}  retries {report['retries']}",
        f"  acked visits  {report['acked_visits']}",
    ]
    latency = report.get("latency", {})
    if latency:
        lines.append(
            f"  {'kind':<12} {'count':>7} {'p50':>9} {'p95':>9} {'p99':>9}"
        )
        for kind in sorted(latency):
            row = latency[kind]
            lines.append(
                f"  {kind:<12} {int(row['count']):>7} {row['p50']:>9.4f} "
                f"{row['p95']:>9.4f} {row['p99']:>9.4f}"
            )
    for rec in report.get("chaos", []):
        lines.append(
            f"  chaos @{rec['elapsed']:.1f}s  {rec['action']}"
            + (f" shard={rec['shard']}" if rec["shard"] is not None else "")
            + (f"  ERROR {rec['error']}" if rec.get("error") else "")
        )
    if "server_health" in report:
        lines.append(f"  server health {report['server_health']}")
    metrics = report.get("server_metrics") or {}
    for shard in sorted(metrics.get("by_shard", {})):
        row = metrics["by_shard"][shard]
        lines.append(
            f"  shard {shard}: served {row['requests']:.0f} requests, "
            f"{row['errors']:.0f} errors (server-side delta)"
        )
    return "\n".join(lines)
