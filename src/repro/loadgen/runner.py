"""The open-loop runner: offer a schedule at its own pace, not the server's.

Closed-loop clients (every benchmark before this one) wait for each
response before sending the next request, so an overloaded server
silently *slows the clients down* and latency looks fine.  Open-loop
load keeps its own clock: requests become due at their scheduled
instants regardless of how the previous ones fared, and latency is
measured **from the scheduled instant** — queueing delay inside the
harness counts against the server, exactly as a real user's wait would.

Mechanics: a pacing loop sleeps until each request's due time and pushes
it onto a bounded backlog; a worker pool drains the backlog through the
transport.  When the server falls behind far enough that the backlog
fills, further due requests are counted as **shed** rather than
silently stretching the offered timeline (shed > 0 means the offered
rate exceeded capacity at that concurrency).  Transient faults — a
shard restarting under the chaos controller, a dropped connection — are
retried a bounded number of times when the error is marked retryable;
what matters for the zero-lost-acks contract is that only *acknowledged*
visits (``archived: true`` responses) are counted.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import RETRYABLE_CODES, MemexError
from ..obs.metrics import Histogram, MetricsRegistry
from .schedule import KINDS, LoadSchedule, ScheduledRequest

#: Histogram buckets for open-loop latency: 1 ms .. 30 s (queue waits
#: under overload dwarf service times, so the ladder reaches far right).
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


def _is_retryable(response: dict[str, Any]) -> bool:
    return bool(response.get("status") == "error" and response.get("retryable"))


@dataclass
class RunResult:
    """Everything one run measured, before report shaping."""

    duration: float                       # wall seconds, first due -> last done
    offered: int                          # scheduled requests
    sent: int = 0                         # actually offered to the transport
    shed: int = 0                         # due but dropped: backlog full
    errors: dict[str, int] = field(default_factory=dict)      # kind -> count
    retries: int = 0
    latency: dict[str, Histogram] = field(default_factory=dict)  # kind -> hist
    acked_visits: dict[str, int] = field(default_factory=dict)   # user -> acks
    registered: int = 0

    @property
    def total_acked(self) -> int:
        return sum(self.acked_visits.values())

    @property
    def total_errors(self) -> int:
        return sum(self.errors.values())

    @property
    def achieved_rate(self) -> float:
        return self.sent / self.duration if self.duration > 0 else 0.0


class OpenLoopRunner:
    """Offer a :class:`LoadSchedule` through a transport, open-loop.

    *transport* is anything satisfying the client
    :class:`~repro.server.transport.Transport` protocol — a single
    :class:`SocketTransport` or a
    :class:`~repro.client.pool.TransportPool` spreading users over
    several sockets.  *workers* bounds in-flight concurrency;
    *max_backlog* bounds how far the harness will queue behind a slow
    server before shedding.  *retries*/*retry_backoff* bound how long a
    request survives a chaos window (a shard restart takes ~1-3 s; the
    default budget rides it out).

    ``time_source``/``sleep`` are injectable for tests; the run is
    otherwise wall-clock driven.
    """

    _STOP = object()

    def __init__(
        self,
        transport: Any,
        schedule: LoadSchedule,
        *,
        workers: int = 8,
        max_backlog: int = 512,
        register_users: bool = True,
        retries: int = 8,
        retry_backoff: float = 0.25,
        time_source: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.transport = transport
        self.schedule = schedule
        self.workers = workers
        self.max_backlog = max_backlog
        self.register_users = register_users
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._clock = time_source
        self._sleep = sleep
        self._lock = threading.Lock()   # guards the RunResult mutables

    # -- setup ----------------------------------------------------------------

    def _register(self, result: RunResult) -> None:
        """Register every scheduled user before load starts (unknown
        users are auth errors, and broadcast registration during the run
        would distort the measured mix)."""
        for user in self.schedule.users:
            response = self.transport.request(
                user, {"servlet": "register_user"},
            )
            if response.get("status") == "error":
                raise MemexError(
                    f"cannot register {user!r}: {response.get('error')}"
                )
            result.registered += 1

    # -- run ------------------------------------------------------------------

    def run(self) -> RunResult:
        registry = MetricsRegistry(enabled=True)
        result = RunResult(
            duration=0.0,
            offered=len(self.schedule.requests),
            errors={kind: 0 for kind in KINDS},
            latency={
                kind: registry.histogram(
                    "loadgen.latency", buckets=LATENCY_BUCKETS, kind=kind,
                )
                for kind in KINDS
            },
        )
        if self.register_users:
            self._register(result)

        backlog: queue.Queue = queue.Queue(maxsize=self.max_backlog)
        threads = [
            threading.Thread(
                target=self._worker, args=(backlog, result), daemon=True,
                name=f"loadgen-worker-{i}",
            )
            for i in range(self.workers)
        ]
        for t in threads:
            t.start()

        t0 = self._clock()
        try:
            for req in self.schedule.requests:
                due = t0 + req.at
                delay = due - self._clock()
                if delay > 0:
                    self._sleep(delay)
                try:
                    backlog.put_nowait((due, req))
                except queue.Full:
                    with self._lock:
                        result.shed += 1
        finally:
            for _ in threads:
                backlog.put((0.0, self._STOP))
            for t in threads:
                t.join()
        result.duration = max(self._clock() - t0, 1e-9)
        return result

    # -- workers --------------------------------------------------------------

    def _worker(self, backlog: queue.Queue, result: RunResult) -> None:
        while True:
            due, req = backlog.get()
            if req is self._STOP:
                return
            self._issue(due, req, result)

    def _issue(
        self, due: float, req: ScheduledRequest, result: RunResult,
    ) -> None:
        with self._lock:
            result.sent += 1
        ok, acked, retries = self._execute(req)
        done = self._clock()
        with self._lock:
            # Open-loop latency: from the *scheduled* instant, so both
            # backlog wait and service time count.
            result.latency[req.kind].observe(max(done - due, 0.0))
            result.retries += retries
            if not ok:
                result.errors[req.kind] = result.errors.get(req.kind, 0) + 1
            if acked:
                result.acked_visits[req.user_id] = (
                    result.acked_visits.get(req.user_id, 0) + acked
                )

    def _execute(self, req: ScheduledRequest) -> tuple[bool, int, int]:
        """Returns (succeeded, acked visit count, retries used)."""
        attempts = 0
        while True:
            try:
                if req.kind == "visit_batch":
                    responses = self.transport.request_batch(
                        req.user_id, list(req.payload),
                    )
                    failed = [r for r in responses if r.get("status") == "error"]
                    if failed and all(_is_retryable(r) for r in failed):
                        raise _Retry()
                    acked = sum(1 for r in responses if r.get("archived"))
                    return (not failed, acked, attempts)
                response = self.transport.request(req.user_id, dict(req.payload))
                if response.get("status") == "error":
                    if _is_retryable(response):
                        raise _Retry()
                    return (False, 0, attempts)
                return (True, 0, attempts)
            except _Retry:
                pass
            except MemexError as exc:
                code = getattr(exc, "code", None)
                if code not in RETRYABLE_CODES:
                    return (False, 0, attempts)
            except OSError:
                pass
            if attempts >= self.retries:
                return (False, 0, attempts)
            attempts += 1
            self._sleep(self.retry_backoff)


class _Retry(Exception):
    """Internal: the response said try again."""
