"""Fault injection scheduled against a running cluster.

A chaos plan is a list of :class:`ChaosEvent`, each naming an *action*
and the run-relative instant it fires.  The controller either runs on
its own thread against the wall clock (:meth:`ChaosController.start`)
or is driven manually (:meth:`ChaosController.step`) so tests can prove
events fire exactly where configured without sleeping.

Built-in actions (the registry is extensible via *handlers*):

``kill_shard``
    SIGKILL one shard worker through
    :meth:`~repro.shard.supervisor.ShardSupervisor.kill`.  The
    supervisor's monitor restarts it with backoff; scatter reads in the
    window come back ``partial: true``, owner writes fail retryable.

``tear_wal_tail``
    Kill the worker, then append a torn (truncated-payload) record to
    its catalog WAL through
    :meth:`~repro.shard.supervisor.ShardSupervisor.tear_wal_tail` —
    simulating a crash mid-write, the torn-tail case the WAL's
    open-time scan must discard.  Acknowledged writes are fsynced
    *before* the ack (``sync=True``), so recovery after this action
    must lose nothing that was acked.

``drop_connections``
    Drop (or half-close, ``half_close=True``) every pooled client
    connection via the transport's ``drop_connections`` hook — the
    mid-request connection-reset path.

Every firing is recorded in :attr:`ChaosController.fired`; each record
carries the event, the elapsed time it actually fired at, and the
handler's detail (e.g. how many connections were dropped).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

ACTIONS = ("kill_shard", "tear_wal_tail", "drop_connections")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: *action* fires *at* seconds into the run.
    *shard* targets the shard-scoped actions; *half_close* selects the
    gentler variant of ``drop_connections``."""

    at: float
    action: str
    shard: int | None = None
    half_close: bool = False

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; one of {ACTIONS}"
            )
        if self.action in ("kill_shard", "tear_wal_tail") and self.shard is None:
            raise ValueError(f"{self.action} requires a shard id")


def parse_chaos(spec: str) -> list[ChaosEvent]:
    """Parse a CLI chaos spec: comma-separated ``action[:shard]@at``.

    >>> parse_chaos("kill_shard:1@5,drop_connections@7.5")
    [ChaosEvent(at=5.0, action='kill_shard', shard=1, half_close=False),\
 ChaosEvent(at=7.5, action='drop_connections', shard=None, half_close=False)]
    """
    events = []
    for part in filter(None, (p.strip() for p in spec.split(","))):
        head, sep, when = part.partition("@")
        if not sep:
            raise ValueError(f"chaos event {part!r} is missing '@<at>'")
        action, sep, shard = head.partition(":")
        events.append(ChaosEvent(
            at=float(when),
            action=action,
            shard=int(shard) if sep else None,
        ))
    return sorted(events, key=lambda e: e.at)


class ChaosController:
    """Fire a chaos plan against *cluster* (a
    :class:`~repro.shard.cluster.MemexCluster`) and/or *pool* (any
    transport exposing ``drop_connections``).

    Two drive modes, mutually exclusive by convention:

    * wall clock — ``start()`` spawns a thread that sleeps between
      events and fires them at their due times; ``stop()`` joins it
      (firing nothing further);
    * manual — call ``step(elapsed)`` with monotonically increasing
      elapsed seconds; every not-yet-fired event with ``at <= elapsed``
      fires, in schedule order.  Deterministic, no sleeping.
    """

    def __init__(
        self,
        events: list[ChaosEvent],
        *,
        cluster: Any = None,
        pool: Any = None,
        handlers: dict[str, Callable[[ChaosEvent], Any]] | None = None,
        time_source: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.events = sorted(events, key=lambda e: e.at)
        self.cluster = cluster
        self.pool = pool
        self.fired: list[dict[str, Any]] = []
        self._next = 0
        self._clock = time_source
        self._sleep = sleep
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._handlers: dict[str, Callable[[ChaosEvent], Any]] = {
            "kill_shard": self._kill_shard,
            "tear_wal_tail": self._tear_wal_tail,
            "drop_connections": self._drop_connections,
        }
        if handlers:
            self._handlers.update(handlers)

    # -- built-in actions -----------------------------------------------------

    def _kill_shard(self, event: ChaosEvent) -> Any:
        self.cluster.supervisor.kill(event.shard)
        return {"killed": event.shard}

    def _tear_wal_tail(self, event: ChaosEvent) -> Any:
        self.cluster.supervisor.kill(event.shard)
        torn = self.cluster.supervisor.tear_wal_tail(event.shard)
        return {"killed": event.shard, "torn_bytes": torn}

    def _drop_connections(self, event: ChaosEvent) -> Any:
        dropped = self.pool.drop_connections(half_close=event.half_close)
        return {"dropped": dropped, "half_close": event.half_close}

    # -- manual drive ---------------------------------------------------------

    def step(self, elapsed: float) -> list[dict[str, Any]]:
        """Fire every not-yet-fired event due at or before *elapsed*;
        returns the firing records appended this step."""
        new: list[dict[str, Any]] = []
        while self._next < len(self.events):
            event = self.events[self._next]
            if event.at > elapsed:
                break
            self._next += 1
            record = {"event": event, "elapsed": elapsed}
            try:
                record["detail"] = self._handlers[event.action](event)
            except Exception as exc:  # a failed injection is data, not a crash
                record["error"] = f"{type(exc).__name__}: {exc}"
            self.fired.append(record)
            new.append(record)
        return new

    @property
    def pending(self) -> int:
        return len(self.events) - self._next

    # -- wall-clock drive -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("chaos controller already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="chaos-controller", daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _run(self) -> None:
        t0 = self._clock()
        while self._next < len(self.events) and not self._stop.is_set():
            due = t0 + self.events[self._next].at
            delay = due - self._clock()
            if delay > 0:
                # Sleep in short slices so stop() is responsive.
                self._stop.wait(min(delay, 0.05))
                continue
            self.step(self._clock() - t0)
