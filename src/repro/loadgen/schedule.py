"""Deterministic open-loop request schedules.

A schedule is the *offered load*, fixed before the run starts: every
request the generator will ever send, stamped with the instant it is due
(seconds from run start).  Building it up front — instead of deciding
"what next" inside the send loop — is what makes the harness open-loop
(arrival times never depend on server latency) and what makes runs
reproducible (the same seed yields the byte-identical schedule in any
process; see :meth:`LoadSchedule.digest`).

The shape of the load comes from ``repro.webgen.population``: session
arrivals follow a diurnal nonhomogeneous Poisson process, the arriving
user is drawn from a Zipfian population scaled toward 10^6 mostly-idle
users, and each session expands into the paper's trail-shaped request
mix — a batch of page visits down one topic's links, then (with
configured probabilities) a search, a trail replay, and a
recommendation pull.  A :class:`~repro.webgen.population.FlashCrowd`
multiplies arrivals inside its window and herds them onto one theme.

Determinism rules (enforced by ``tests/test_loadgen.py``): one
``random.Random(seed)`` drives every draw in arrival order; no builtin
``hash()``; no iteration over sets (anything set-built is ``sorted``
first).
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..webgen.population import (
    DiurnalCurve,
    FlashCrowd,
    ZipfPopulation,
    arrival_times,
)

#: Request kinds a schedule can contain, in mix order.
KINDS = ("visit_batch", "search", "trail", "recommend")

#: Default per-session request mix: every session surfs a visit batch;
#: the read-side follows with these probabilities.
DEFAULT_MIX: dict[str, float] = {
    "search": 0.6,
    "trail": 0.35,
    "recommend": 0.15,
}


@dataclass(frozen=True)
class ScheduledRequest:
    """One due request: *at* seconds after run start, *user_id* issues
    *kind* with *payload* (a servlet payload dict, or — for
    ``visit_batch`` — the list of per-visit payloads shipped as one
    batch envelope so the whole batch lands on one shard as one group
    commit)."""

    at: float
    user_id: str
    kind: str
    payload: Any

    def to_json(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "user_id": self.user_id,
            "kind": self.kind,
            "payload": self.payload,
        }


@dataclass
class LoadSchedule:
    """An immutable-by-convention, time-sorted request schedule."""

    requests: list[ScheduledRequest]
    duration: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def users(self) -> list[str]:
        """Distinct scheduled users, sorted — the set the runner must
        register before offering load (unknown users are auth errors)."""
        return sorted({r.user_id for r in self.requests})

    def counts(self) -> dict[str, int]:
        """Request count per kind (stable key order)."""
        out = {kind: 0 for kind in KINDS}
        for r in self.requests:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    @property
    def offered_rate(self) -> float:
        """Scheduled requests per second over the whole horizon."""
        return len(self.requests) / self.duration if self.duration else 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "duration": self.duration,
            "meta": self.meta,
            "requests": [r.to_json() for r in self.requests],
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON form — two schedules are the
        same offered load iff their digests match, across processes."""
        canonical = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "LoadSchedule":
        return cls(
            requests=[ScheduledRequest(**r) for r in payload["requests"]],
            duration=payload["duration"],
            meta=dict(payload.get("meta", {})),
        )


def _topic_terms(topic: str) -> list[str]:
    """Query terms for a topic path: its last two alphabetic words."""
    words = [w.lower() for w in re.findall(r"[A-Za-z]+", topic)]
    return words[-2:] if words else ["web"]


def _pages_by_topic(corpus: Any) -> dict[str, list[str]]:
    """Topic -> sorted page URLs (sorted: corpus internals may hold
    sets; the schedule must not inherit their iteration order)."""
    by_topic: dict[str, list[str]] = {}
    for url in sorted(corpus.pages):
        by_topic.setdefault(corpus.pages[url].topic, []).append(url)
    return by_topic


def build_schedule(
    corpus: Any,
    *,
    seed: int,
    duration: float,
    rate: float,
    population: int = 1_000_000,
    zipf_exponent: float = 1.1,
    diurnal_amplitude: float = 0.6,
    diurnal_period: float | None = None,
    flash: FlashCrowd | None = None,
    mix: dict[str, float] | None = None,
    visits_per_batch: int = 8,
    session_span: float = 2.0,
    interests_per_user: int = 2,
    sim_base_at: float = 0.0,
) -> LoadSchedule:
    """Build the offered load for one run.

    *rate* is the target offered **requests** per second averaged over
    *duration*; the session arrival rate is derived from it by dividing
    out the expected requests per session under *mix*.  *corpus* is a
    :class:`~repro.webgen.corpus.WebCorpus` (typically
    ``build_workload(...).corpus``) supplying real archived URLs and
    topics so visits, searches, and trails hit plausible content.
    ``diurnal_period`` defaults to the horizon itself so short runs
    still sweep a full peak/trough cycle; pass ``86_400.0`` for real
    days.  ``sim_base_at`` offsets the archive timestamps carried by
    visit payloads (use the replayed workload's end time so new visits
    land after history).
    """
    if duration <= 0:
        raise ValueError("duration must be > 0")
    if rate <= 0:
        raise ValueError("rate must be > 0")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    by_topic = _pages_by_topic(corpus)
    topics = sorted(by_topic)
    if not topics:
        raise ValueError("corpus has no pages to surf")

    requests_per_session = 1.0 + sum(mix.get(k, 0.0) for k in KINDS[1:])
    session_rate = rate / requests_per_session
    curve = DiurnalCurve(
        session_rate,
        amplitude=diurnal_amplitude,
        period=diurnal_period if diurnal_period is not None else duration,
    )

    def session_arrival_rate(t: float) -> float:
        boost = flash.boost(t) if flash is not None else 1.0
        return curve.rate(t) * boost

    max_rate = curve.max_rate * (flash.multiplier if flash is not None else 1.0)

    pop = ZipfPopulation(population, exponent=zipf_exponent)
    rng = random.Random(seed)
    out: list[ScheduledRequest] = []
    flash_sessions = 0

    for t0 in arrival_times(session_arrival_rate, max_rate, 0.0, duration, rng):
        user = pop.sample_user(rng)
        interests = pop.interests(
            user, topics, k=interests_per_user, seed=seed,
        )
        topic = rng.choice(interests)
        if (
            flash is not None
            and flash.active(t0)
            and flash.topic in by_topic
            and rng.random() < flash.attraction
        ):
            topic = flash.topic
            flash_sessions += 1
        urls = by_topic[topic]

        # The session spreads its requests over session_span seconds
        # (dwell times compressed: wall-clock surfing is simulated in
        # the visit timestamps, not in the offered schedule).
        t_batch = t0
        visits = []
        for j in range(visits_per_batch):
            url = urls[rng.randrange(len(urls))]
            visits.append({
                "servlet": "visit",
                "url": url,
                "at": round(sim_base_at + t0 + j * 30.0, 3),
                "session_id": 0,
            })
        out.append(ScheduledRequest(round(t_batch, 6), user, "visit_batch", visits))

        t = t0
        for kind in KINDS[1:]:
            # Draw the coin for every kind unconditionally so the RNG
            # stream does not depend on which branch was taken.
            coin = rng.random()
            t += rng.uniform(0.1, session_span / 2.0)
            if coin >= mix.get(kind, 0.0) or t >= duration:
                continue
            if kind == "search":
                payload = {
                    "servlet": "search",
                    "query": " ".join(_topic_terms(topic)),
                    "limit": 10,
                    "offset": 0,
                }
            elif kind == "trail":
                payload = {
                    "servlet": "trail",
                    "folder_path": topic,
                    "window_days": 14.0,
                }
            else:
                payload = {"servlet": "recommend", "k": 10}
            out.append(ScheduledRequest(round(t, 6), user, kind, payload))

    out.sort(key=lambda r: (r.at, r.user_id, r.kind))
    meta = {
        "seed": seed,
        "rate": rate,
        "population": population,
        "zipf_exponent": zipf_exponent,
        "diurnal_amplitude": diurnal_amplitude,
        "visits_per_batch": visits_per_batch,
        "mix": {k: mix.get(k, 0.0) for k in sorted(mix)},
        "flash_sessions": flash_sessions,
        "flash_topic": flash.topic if flash is not None else None,
        "distinct_users": len({r.user_id for r in out}),
    }
    return LoadSchedule(requests=out, duration=duration, meta=meta)


def merge_schedules(schedules: Iterable[LoadSchedule]) -> LoadSchedule:
    """Overlay several schedules onto one timeline (e.g. a background
    load plus a flash-crowd overlay built with different seeds)."""
    schedules = list(schedules)
    if not schedules:
        raise ValueError("nothing to merge")
    requests = sorted(
        (r for s in schedules for r in s.requests),
        key=lambda r: (r.at, r.user_id, r.kind),
    )
    return LoadSchedule(
        requests=requests,
        duration=max(s.duration for s in schedules),
        meta={"merged": [s.meta for s in schedules]},
    )
