"""Memex reproduction: a browsing assistant for collaborative archiving
and mining of surf trails (Chakrabarti et al., VLDB 2000).

Public API highlights:

* :class:`repro.core.MemexSystem` — build a server over a (simulated) Web,
  connect client applets, replay surfing.
* :mod:`repro.webgen` — the synthetic Web + surfer workload generator.
* :mod:`repro.mining` — naive-Bayes and enhanced classifiers, HAC,
  scatter/gather, theme discovery.
* :mod:`repro.folders` — folder trees and Netscape/IE bookmark interchange.
* :mod:`repro.storage` — the relational + key-value storage substrate.
* :mod:`repro.obs` — metrics, tracing, and profiling, wired through the
  whole server pipeline.
* :mod:`repro.cache` — version-aware read-path caches for search,
  classification, and trail replay.
"""

from . import (
    cache,
    client,
    core,
    folders,
    mining,
    obs,
    server,
    storage,
    text,
    webgen,
)
from .core import MemexServer, MemexSystem, MotivatingQueries
from .errors import MemexError
from .webgen import bookmark_challenge_workload, build_workload

__version__ = "1.0.0"

__all__ = [
    "MemexError",
    "MemexServer",
    "MemexSystem",
    "MotivatingQueries",
    "__version__",
    "bookmark_challenge_workload",
    "build_workload",
    "cache",
    "client",
    "core",
    "folders",
    "mining",
    "obs",
    "server",
    "storage",
    "text",
    "webgen",
]
