"""Community consolidation report (the Figure 4 pipeline, end to end).

"Periodically, the server consolidates all users' public folders and
browse history into a topic directory tailored to the needs of that
specific community" (§2).  This module packages the consolidated view:
the theme taxonomy, how each user's folders map onto it, and how each
user fits the map — the data behind motivating query five.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..mining.themes import Theme, ThemeTaxonomy
from .memex import MemexServer
from .profiles import UserProfile


@dataclass
class ThemeSummary:
    theme_id: str
    label: str
    depth: int
    num_folders: int
    num_users: int
    weight: float
    member_folders: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class CommunityReport:
    """Everything the community tab shows."""

    themes: list[ThemeSummary]
    folder_to_theme: dict[tuple[str, str], str]   # (user, folder path) -> theme id
    user_fit: dict[str, list[tuple[str, float]]]  # user -> top (theme, weight)
    taxonomy_depth: int

    def themes_for_user(self, user_id: str) -> list[ThemeSummary]:
        mine = {
            theme_id
            for (user, _path), theme_id in self.folder_to_theme.items()
            if user == user_id
        }
        return [t for t in self.themes if t.theme_id in mine]

    def shared_themes(self, *, min_users: int = 2) -> list[ThemeSummary]:
        """Themes capturing 'common factors in people's interests'."""
        return [t for t in self.themes if t.num_users >= min_users]

    def individual_themes(self) -> list[ThemeSummary]:
        """Themes that exist to preserve one user's individuality."""
        return [t for t in self.themes if t.num_users == 1]

    def render(self, *, max_themes: int = 20) -> str:
        lines = [f"Community taxonomy (depth {self.taxonomy_depth}):"]
        for t in self.themes[:max_themes]:
            pad = "  " * t.depth
            lines.append(
                f"{pad}- [{t.theme_id}] {t.label}  "
                f"({t.num_folders} folders / {t.num_users} users, w={t.weight:.0f})"
            )
        return "\n".join(lines)


def consolidate(server: MemexServer) -> CommunityReport | None:
    """Build the report from the server's current taxonomy and profiles.

    Returns None when the theme daemon has not produced a taxonomy yet.
    """
    taxonomy = server.themes.taxonomy
    if taxonomy is None:
        return None
    profiles = server.current_profiles()
    return build_report(taxonomy, profiles)


def build_report(
    taxonomy: ThemeTaxonomy,
    profiles: dict[str, UserProfile],
) -> CommunityReport:
    summaries: list[ThemeSummary] = []
    folder_to_theme: dict[tuple[str, str], str] = {}

    def visit(theme: Theme, depth: int) -> None:
        summaries.append(ThemeSummary(
            theme_id=theme.theme_id,
            label=theme.label,
            depth=depth,
            num_folders=len(theme.folders),
            num_users=theme.num_users,
            weight=theme.weight,
            member_folders=list(theme.folders),
        ))
        if theme.is_leaf:
            for user, path in theme.folders:
                folder_to_theme[(user, path)] = theme.theme_id
        for child in theme.children:
            visit(child, depth + 1)

    for root in taxonomy.roots:
        visit(root, 0)

    user_fit: dict[str, list[tuple[str, float]]] = defaultdict(list)
    for user_id, profile in profiles.items():
        user_fit[user_id] = profile.top_themes(5)

    return CommunityReport(
        themes=summaries,
        folder_to_theme=folder_to_theme,
        user_fit=dict(user_fit),
        taxonomy_depth=taxonomy.depth(),
    )
