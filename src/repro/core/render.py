"""Terminal rendering of the Memex tabs.

The paper's screenshots (Figures 1, 2, 4) are GUI panels; this module is
their text-mode equivalent, used by the CLI, the examples, and humans
poking at a live system.  Rendering is pure formatting over the servlet
payloads — no server access — so it is trivially testable.
"""

from __future__ import annotations

from typing import Any


def render_folder_view(view: dict[str, Any], *, max_items: int = 6) -> str:
    """The folder tab: folders, bookmarks, and '?' guesses (Figure 1)."""
    lines: list[str] = []
    for folder in view["folders"]:
        guesses = sum(1 for i in folder["items"] if i["guess"])
        deliberate = len(folder["items"]) - guesses
        lines.append(
            f"[{folder['path']}]  {deliberate} filed, {guesses} guessed"
        )
        for item in folder["items"][:max_items]:
            marker = "? " if item["guess"] else "  "
            conf = (
                f"  ({item['confidence']:.2f})"
                if item["guess"] and item["confidence"] is not None else ""
            )
            lines.append(f"  {marker}{item['url']}{conf}")
        overflow = len(folder["items"]) - max_items
        if overflow > 0:
            lines.append(f"   ... {overflow} more")
    return "\n".join(lines)


def render_trail(trail: dict[str, Any], *, max_nodes: int = 12) -> str:
    """The trail tab (Figure 2): scored pages plus their click structure."""
    lines = [f"Trail for {', '.join(trail['folders']) or '(all topics)'}:"]
    shown = trail["nodes"][:max_nodes]
    index = {node["url"]: i + 1 for i, node in enumerate(shown)}
    for i, node in enumerate(shown, start=1):
        visitors = len(node["visitors"])
        lines.append(
            f"{i:3d}. [{node['score']:6.2f}] {node['url']}"
            f"  ({node['visits']} visits / {visitors} surfer"
            f"{'s' if visitors != 1 else ''})"
        )
    arrows = []
    for edge in trail["edges"]:
        if edge["src"] in index and edge["dst"] in index:
            kind = "=>" if edge["clicks"] else "->"
            arrows.append(f"{index[edge['src']]}{kind}{index[edge['dst']]}")
    if arrows:
        lines.append("edges: " + "  ".join(arrows[:20]))
        lines.append("(=> observed clicks, -> hyperlinks)")
    return "\n".join(lines)


def render_themes(themes: list[dict[str, Any]]) -> str:
    """The community taxonomy (Figure 4), annotated with sharing."""
    lines: list[str] = []

    def emit(theme: dict[str, Any], depth: int) -> None:
        shared = "shared" if theme["num_users"] > 1 else "individual"
        me = (
            f"  <= you ({theme['my_weight']:.2f})"
            if theme.get("my_weight", 0) > 0.05 else ""
        )
        lines.append(
            "  " * depth
            + f"- {theme['label']}  [{shared}: {theme['num_users']} users, "
              f"{len(theme['folders'])} folders]{me}"
        )
        for child in theme["children"]:
            emit(child, depth + 1)

    for theme in themes:
        emit(theme, 0)
    return "\n".join(lines)


def render_bill(lines_payload: list[dict[str, Any]]) -> str:
    """The ISP-bill split (motivating query 4)."""
    if not lines_payload:
        return "(no archived traffic in the period)"
    width = max(len(l["category"]) for l in lines_payload)
    out = []
    for line in lines_payload:
        bar = "#" * round(line["share"] * 40)
        out.append(
            f"{line['category']:<{width}}  ${line['amount']:6.2f}  "
            f"{100 * line['share']:5.1f}%  {bar}"
        )
    return "\n".join(out)


def render_search_hits(hits: list[dict[str, Any]]) -> str:
    """The search tab: title, url, score, and marked snippet."""
    out = []
    for i, hit in enumerate(hits, start=1):
        title = hit.get("title") or hit["url"]
        out.append(f"{i:3d}. {title}  ({hit['score']:.2f})")
        out.append(f"     {hit['url']}")
        if hit.get("snippet"):
            out.append(f"     {hit['snippet']}")
    return "\n".join(out)
