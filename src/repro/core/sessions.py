"""Session inference over raw visit streams.

The applet stamps visits with a client-side session id, but two archive
paths arrive without one: histories imported from browser files, and
clients too old to send it.  Memex then infers sessions the standard way
— a gap threshold over the per-user visit stream (30 minutes was, and
remains, the industry convention) — so context recall (Figure 2) works
on imported history too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.repository import MemexRepository

DEFAULT_GAP = 30 * 60.0  # the classic 30-minute session timeout


@dataclass
class InferredSession:
    """A contiguous burst of one user's visits."""

    user_id: str
    started_at: float
    ended_at: float
    urls: list[str] = field(default_factory=list)
    visit_ids: list[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    def __len__(self) -> int:
        return len(self.urls)


def segment_visits(
    visits: list[dict],
    *,
    gap: float = DEFAULT_GAP,
) -> list[InferredSession]:
    """Split one user's time-ordered visit rows at gaps longer than *gap*.

    Rows must all belong to the same user; they are sorted defensively.
    """
    if not visits:
        return []
    rows = sorted(visits, key=lambda v: v["at"])
    user_id = rows[0]["user_id"]
    sessions: list[InferredSession] = []
    current = InferredSession(
        user_id=user_id, started_at=rows[0]["at"], ended_at=rows[0]["at"],
    )
    for row in rows:
        if row["user_id"] != user_id:
            raise ValueError("segment_visits expects a single user's rows")
        if row["at"] - current.ended_at > gap and current.urls:
            sessions.append(current)
            current = InferredSession(
                user_id=user_id, started_at=row["at"], ended_at=row["at"],
            )
        current.urls.append(row["url"])
        current.visit_ids.append(row["visit_id"])
        current.ended_at = row["at"]
    sessions.append(current)
    return sessions


def infer_user_sessions(
    repo: MemexRepository,
    user_id: str,
    *,
    gap: float = DEFAULT_GAP,
    since: float | None = None,
) -> list[InferredSession]:
    """Infer sessions for a user straight from the catalog."""
    return segment_visits(
        repo.user_visits(user_id, since=since), gap=gap,
    )


def assign_session_ids(
    repo: MemexRepository,
    user_id: str,
    *,
    gap: float = DEFAULT_GAP,
    only_missing: bool = True,
) -> int:
    """Write inferred session ids back onto visit rows.

    Visits with ``session_id == 0`` are the unassigned ones (imported
    histories use 0); with ``only_missing`` those are the only rows
    touched.  New ids continue after the user's current maximum so they
    never collide with client-assigned sessions.  Returns #rows updated.
    """
    visits = repo.user_visits(user_id)
    if not visits:
        return 0
    next_id = max(v["session_id"] for v in visits) + 1
    targets = [v for v in visits if not only_missing or v["session_id"] == 0]
    if not targets:
        return 0
    updated = 0
    for session in segment_visits(targets, gap=gap):
        for visit_id in session.visit_ids:
            repo.db.update("visits", visit_id, {"session_id": next_id})
            updated += 1
        next_id += 1
    return updated


def session_statistics(sessions: list[InferredSession]) -> dict[str, float]:
    """Summary stats used by the examples and the workload sanity tests."""
    if not sessions:
        return {"count": 0, "mean_length": 0.0, "mean_duration": 0.0}
    return {
        "count": len(sessions),
        "mean_length": sum(len(s) for s in sessions) / len(sessions),
        "mean_duration": sum(s.duration for s in sessions) / len(sessions),
    }
