"""Collaborative recommendation over theme profiles.

§4 ends: "we intend to use this for better collaborative recommendation
[10]" (Ungar & Foster's clustered collaborative filtering).  We implement
both pieces:

* :func:`recommend_pages` — neighborhood CF: pages engaged by
  profile-similar users, weighted by their similarity and by how well the
  page matches the target user's strong themes;
* :func:`cluster_users` — the Ungar-Foster move of clustering users (here
  by theme profile, with HAC) so recommendation pools form within
  like-minded groups.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..mining.hac import cluster_vectors
from ..mining.themes import ThemeTaxonomy
from ..server.daemons import PageVectorizer
from ..storage.repository import MemexRepository
from ..storage.schema import ASSOC_BOOKMARK, ASSOC_CORRECTION
from .profiles import UserProfile, profile_similarity


@dataclass
class Recommendation:
    url: str
    score: float
    supporters: list[str]       # users whose engagement produced it
    theme_id: str | None = None

    def to_payload(self) -> dict:
        return {
            "url": self.url,
            "score": self.score,
            "supporters": self.supporters,
            "theme": self.theme_id,
        }


def _engagements(repo: MemexRepository) -> dict[str, dict[str, float]]:
    """user -> url -> strength (visits count 1, bookmarks 3)."""
    out: dict[str, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for visit in repo.db.table("visits").scan():
        out[visit["user_id"]][visit["url"]] += 1.0
    for row in repo.db.table("folder_pages").select(
        lambda r: r["source"] in (ASSOC_BOOKMARK, ASSOC_CORRECTION)
    ):
        folder = repo.db.table("folders").get(row["folder_id"])
        if folder is not None:
            out[folder["owner"]][row["url"]] += 3.0
    return {u: dict(urls) for u, urls in out.items()}


def recommend_pages(
    repo: MemexRepository,
    vectorizer: PageVectorizer,
    taxonomy: ThemeTaxonomy | None,
    profiles: dict[str, UserProfile],
    user_id: str,
    *,
    k: int = 10,
    neighbors: int = 5,
    min_similarity: float = 0.05,
) -> list[Recommendation]:
    """Pages the user's profile-neighbors value that the user hasn't seen."""
    me = profiles.get(user_id)
    if me is None:
        return []
    engagements = _engagements(repo)
    seen = set(engagements.get(user_id, ()))
    peers = sorted(
        (
            (other, profile_similarity(me, profile))
            for other, profile in profiles.items()
            if other != user_id
        ),
        key=lambda kv: (-kv[1], kv[0]),
    )[:neighbors]

    scores: dict[str, float] = defaultdict(float)
    supporters: dict[str, set[str]] = defaultdict(set)
    for peer, sim in peers:
        if sim < min_similarity:
            continue
        for url, strength in engagements.get(peer, {}).items():
            if url in seen:
                continue
            scores[url] += sim * strength
            supporters[url].add(peer)

    out: list[Recommendation] = []
    for url, score in scores.items():
        theme_id = None
        theme_boost = 1.0
        if taxonomy is not None:
            vec = vectorizer.tfidf_vector(url)
            if vec is not None:
                theme, similarity = taxonomy.assign(vec)
                if similarity > 0.0:
                    theme_id = theme.theme_id
                    # Boost pages in the user's own strong themes.
                    theme_boost = 1.0 + me.weights.get(theme.theme_id, 0.0) * 4.0
        out.append(Recommendation(
            url=url,
            score=score * theme_boost,
            supporters=sorted(supporters[url]),
            theme_id=theme_id,
        ))
    out.sort(key=lambda r: (-r.score, r.url))
    return out[:k]


def cluster_users(
    profiles: dict[str, UserProfile],
    *,
    k: int,
) -> list[list[str]]:
    """Group users into k interest clusters by theme profile (HAC).

    Users with empty profiles (nothing archived yet) land in their own
    trailing singleton groups.
    """
    named = sorted(profiles)
    with_mass = [u for u in named if profiles[u].weights]
    empty = [u for u in named if not profiles[u].weights]
    if not with_mass:
        return [[u] for u in empty]
    theme_ids = sorted({t for u in with_mass for t in profiles[u].weights})
    tid_index = {t: i for i, t in enumerate(theme_ids)}
    vectors = [
        {tid_index[t]: w for t, w in profiles[u].weights.items()}
        for u in with_mass
    ]
    groups = cluster_vectors(vectors, min(k, len(with_mass)))
    out = [[with_mass[i] for i in group] for group in groups]
    out.extend([[u] for u in empty])
    return out
