"""The paper's primary contribution: the Memex browsing assistant."""

from .api import MemexSystem, corpus_fetcher
from .billing import BillLine, bill_breakdown
from .community import CommunityReport, ThemeSummary, build_report, consolidate
from .context import SessionContext, context_neighborhood, recall_session
from .memex import MemexServer
from .organize import ProposedFolder, apply_proposal, propose_hierarchy
from .profiles import (
    UserProfile,
    build_profile,
    profile_similarity,
    similar_users,
    url_overlap_similarity,
)
from .queries import MotivatingQueries, QueryAnswer
from .recommend import Recommendation, cluster_users, recommend_pages
from .render import (
    render_bill,
    render_folder_view,
    render_search_hits,
    render_themes,
    render_trail,
)
from .sessions import (
    InferredSession,
    assign_session_ids,
    infer_user_sessions,
    segment_visits,
)
from .trails import (
    TrailEdge,
    TrailGraph,
    TrailNode,
    build_trail_graph,
    folder_and_descendants,
)

__all__ = [
    "BillLine",
    "CommunityReport",
    "MemexServer",
    "MemexSystem",
    "MotivatingQueries",
    "ProposedFolder",
    "QueryAnswer",
    "apply_proposal",
    "propose_hierarchy",
    "InferredSession",
    "Recommendation",
    "SessionContext",
    "ThemeSummary",
    "TrailEdge",
    "TrailGraph",
    "TrailNode",
    "UserProfile",
    "bill_breakdown",
    "build_profile",
    "build_report",
    "build_trail_graph",
    "cluster_users",
    "consolidate",
    "context_neighborhood",
    "corpus_fetcher",
    "folder_and_descendants",
    "profile_similarity",
    "recall_session",
    "recommend_pages",
    "render_bill",
    "render_folder_view",
    "render_search_hits",
    "render_themes",
    "render_trail",
    "segment_visits",
    "assign_session_ids",
    "infer_user_sessions",
    "similar_users",
    "url_overlap_similarity",
]
