"""ISP-bill decomposition by topic.

Motivating query four (§1): "How is my ISP bill divided into access for
work, travel, news, hobby and entertainment?"  Each archived visit is
costed by the bytes it transferred (we use the stored page text size plus
a fixed HTML/image overhead) and attributed to the *top-level* folder of
its classified topic; the per-topic byte shares are then scaled to the
user's monthly rate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..storage.repository import MemexRepository

# Average non-text payload (markup, inline images) added to every page, in
# bytes — late-90s pages averaged a few tens of KB.
PAGE_OVERHEAD_BYTES = 12_000
UNCLASSIFIED = "(unclassified)"


@dataclass
class BillLine:
    """One line of the decomposed bill."""

    category: str
    visits: int
    bytes: int
    share: float        # fraction of costed traffic
    amount: float       # share x monthly rate

    def to_payload(self) -> dict:
        return {
            "category": self.category,
            "visits": self.visits,
            "bytes": self.bytes,
            "share": self.share,
            "amount": self.amount,
        }


def _top_level(repo: MemexRepository, folder_id: str) -> str:
    """The root folder name of the folder's path (the bill category)."""
    folder = repo.db.table("folders").get(folder_id)
    if folder is None:
        return UNCLASSIFIED
    seen = {folder_id}
    while folder.get("parent"):
        parent = repo.db.table("folders").get(folder["parent"])
        if parent is None or parent["folder_id"] in seen:
            break
        seen.add(parent["folder_id"])
        folder = parent
    return folder["name"]


def visit_cost_bytes(repo: MemexRepository, url: str) -> int:
    text = repo.page_text(url)
    return (len(text.encode("utf-8")) if text else 0) + PAGE_OVERHEAD_BYTES


def bill_breakdown(
    repo: MemexRepository,
    user_id: str,
    *,
    since: float | None = None,
    until: float | None = None,
    monthly_rate: float = 20.0,
) -> list[BillLine]:
    """Decompose the user's traffic in the window into bill lines,
    sorted by descending amount (unclassified, if any, last)."""
    visits = repo.user_visits(user_id, since=since, until=until)
    by_category: dict[str, list[int]] = defaultdict(list)
    for visit in visits:
        category = (
            _top_level(repo, visit["topic_folder"])
            if visit["topic_folder"] else UNCLASSIFIED
        )
        by_category[category].append(visit_cost_bytes(repo, visit["url"]))
    total_bytes = sum(sum(costs) for costs in by_category.values())
    if total_bytes == 0:
        return []
    lines = [
        BillLine(
            category=category,
            visits=len(costs),
            bytes=sum(costs),
            share=sum(costs) / total_bytes,
            amount=monthly_rate * sum(costs) / total_bytes,
        )
        for category, costs in by_category.items()
    ]
    lines.sort(key=lambda l: (l.category == UNCLASSIFIED, -l.amount, l.category))
    return lines
