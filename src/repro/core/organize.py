"""Proposing topic hierarchies over unorganized links (§2).

"Memex also uses unsupervised clustering to propose a topic hierarchy
over a set of links that the user may want to reorganize."

Given the URLs piled up in one folder (typically a fat ``Imported`` folder
straight from a browser), :func:`propose_hierarchy` clusters their pages
with HAC, recursively splitting big incoherent clusters, and labels each
proposed subfolder from its distinctive terms.  The user reviews the
proposal in the folder tab; :func:`apply_proposal` then materializes the
accepted structure as real subfolders with the items re-filed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EmptyCorpus
from ..mining.hac import hac
from ..server.daemons import PageVectorizer
from ..text.vectorize import SparseVector, centroid, normalize, top_terms


@dataclass
class ProposedFolder:
    """One node of a proposed reorganization."""

    name: str
    urls: list[str] = field(default_factory=list)      # direct members
    children: list["ProposedFolder"] = field(default_factory=list)
    cohesion: float = 1.0

    def all_urls(self) -> list[str]:
        out = list(self.urls)
        for child in self.children:
            out.extend(child.all_urls())
        return out

    def num_folders(self) -> int:
        return 1 + sum(c.num_folders() for c in self.children)

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "urls": self.urls,
            "cohesion": self.cohesion,
            "children": [c.to_payload() for c in self.children],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ProposedFolder":
        return cls(
            name=payload["name"],
            urls=list(payload["urls"]),
            cohesion=payload.get("cohesion", 1.0),
            children=[cls.from_payload(c) for c in payload["children"]],
        )

    def render(self, depth: int = 0) -> str:
        lines = ["  " * depth + f"[{self.name}]  ({len(self.urls)} links)"]
        for url in self.urls[:3]:
            lines.append("  " * (depth + 1) + url)
        if len(self.urls) > 3:
            lines.append("  " * (depth + 1) + f"... {len(self.urls) - 3} more")
        for child in self.children:
            lines.append(child.render(depth + 1))
        return "\n".join(lines)


def propose_hierarchy(
    vectorizer: PageVectorizer,
    urls: list[str],
    *,
    min_cluster: int = 3,
    cohesion_threshold: float = 0.5,
    max_depth: int = 3,
    label_terms: int = 2,
) -> ProposedFolder:
    """Cluster *urls* into a proposed folder hierarchy.

    URLs without fetched text stay at the root (the proposal never hides
    anything).  Splitting recurses while a cluster is big (>=
    2*min_cluster) and incoherent (merge similarity below
    *cohesion_threshold*), down to *max_depth*.
    """
    usable: list[str] = []
    stranded: list[str] = []
    vectors: list[SparseVector] = []
    for url in urls:
        vec = vectorizer.tfidf_vector(url)
        if vec:
            usable.append(url)
            vectors.append(normalize(vec))
        else:
            stranded.append(url)
    if not usable:
        raise EmptyCorpus("no fetched pages among the given urls")

    dendro = hac(vectors, linkage="group-average")
    children: dict[int, tuple[int, int]] = {}
    sim_at: dict[int, float] = {}
    for left, right, new, sim in dendro.merges:
        children[new] = (left, right)
        sim_at[new] = sim
    root_id = dendro.merges[-1][2] if dendro.merges else 0

    vocab = vectorizer.vocab
    used_names: set[str] = set()

    def leaves_under(node: int) -> list[int]:
        if node < len(usable):
            return [node]
        l, r = children[node]
        return leaves_under(l) + leaves_under(r)

    def label_for(member_idx: list[int]) -> str:
        center = centroid([vectors[i] for i in member_idx])
        cutoff = max(2, int(0.25 * max(vocab.num_docs, 1)))
        distinctive = {
            t: w for t, w in center.items() if vocab.doc_freq(t) <= cutoff
        } or center
        base = " ".join(top_terms(vocab, distinctive, k=label_terms)) or "misc"
        name = base
        n = 2
        while name in used_names:
            name = f"{base} ({n})"
            n += 1
        used_names.add(name)
        return name

    def build(node: int, depth: int) -> ProposedFolder:
        # Peel outliers: unbalanced dendrograms merge stragglers one at a
        # time near the top; rather than nesting a chain of near-identical
        # folders, absorb each tiny side here and descend into the bulk.
        absorbed: list[int] = []
        while node >= len(usable):
            l, r = children[node]
            size_l, size_r = len(leaves_under(l)), len(leaves_under(r))
            if size_l < min_cluster and size_r >= min_cluster:
                absorbed.extend(leaves_under(l))
                node = r
            elif size_r < min_cluster and size_l >= min_cluster:
                absorbed.extend(leaves_under(r))
                node = l
            else:
                break
        member_idx = absorbed + leaves_under(node)
        folder = ProposedFolder(
            name=label_for(member_idx),
            cohesion=sim_at.get(node, 1.0),
        )
        folder.urls = [usable[i] for i in absorbed]
        split = (
            node >= len(usable)
            and depth < max_depth
            and len(member_idx) >= 2 * min_cluster
            and sim_at[node] < cohesion_threshold
        )
        if split:
            l, r = children[node]
            folder.children = [build(l, depth + 1), build(r, depth + 1)]
        else:
            folder.urls.extend(usable[i] for i in leaves_under(node))
        return folder

    root = build(root_id, 0)
    root.name = "Proposed organization"
    root.urls.extend(stranded)
    return root


def apply_proposal(
    server,
    owner: str,
    base_path: str,
    proposal: ProposedFolder,
    *,
    at: float,
) -> int:
    """Materialize an accepted proposal under *base_path*.

    Creates the proposed subfolders and re-files each URL from the base
    folder into its proposed home as a *correction* (it is a deliberate
    user gesture, the strongest supervision).  Returns how many items
    moved.  ``server`` is a :class:`repro.core.memex.MemexServer`.
    """
    from ..storage.schema import ASSOC_CORRECTION

    base_id = server.folder_id(owner, base_path)
    moved = 0

    def place(folder: ProposedFolder, path: str) -> None:
        nonlocal moved
        for url in folder.urls:
            if path:
                target_path = f"{base_path}/{path}"
            else:
                target_path = base_path
            target_id = server._ensure_folder(owner, target_path, at)
            if target_id != base_id:
                server.repo.dissociate(base_id, url)
                server.repo.associate(
                    target_id, url, ASSOC_CORRECTION, now=at,
                )
                moved += 1
        for child in folder.children:
            child_path = f"{path}/{child.name}" if path else child.name
            place(child, child_path)

    place(proposal, "")
    return moved
