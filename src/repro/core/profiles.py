"""User profiles as theme-weight vectors.

§4: "'Normalizing' all members of the community to themes also lets us
represent surfers' interests in a canonical form: roughly speaking, a user
profile is a set of weights associated with each node of a theme
hierarchy; this gives us a means of comparing profiles that is far
superior to overlap in sets of URLs."

A profile is built by assigning every page the user engaged with to its
best theme and accumulating weights — deliberate bookmarks count more
than drive-by visits.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from ..mining.themes import ThemeTaxonomy
from ..server.daemons import PageVectorizer
from ..storage.repository import MemexRepository
from ..storage.schema import ASSOC_BOOKMARK, ASSOC_CORRECTION

BOOKMARK_WEIGHT = 3.0
VISIT_WEIGHT = 1.0


@dataclass
class UserProfile:
    """Theme-id -> normalized weight, plus bookkeeping."""

    user_id: str
    weights: dict[str, float] = field(default_factory=dict)
    pages: int = 0

    def top_themes(self, k: int = 3) -> list[tuple[str, float]]:
        return sorted(self.weights.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def to_payload(self) -> dict:
        return {
            "user_id": self.user_id,
            "weights": dict(self.weights),
            "pages": self.pages,
        }


def build_profile(
    repo: MemexRepository,
    vectorizer: PageVectorizer,
    taxonomy: ThemeTaxonomy,
    user_id: str,
) -> UserProfile:
    """Profile one user from their visits and deliberate bookmarks."""
    engagement: dict[str, float] = defaultdict(float)
    for visit in repo.user_visits(user_id):
        engagement[visit["url"]] += VISIT_WEIGHT
    for row in repo.db.table("folder_pages").select(
        lambda r: r["source"] in (ASSOC_BOOKMARK, ASSOC_CORRECTION)
    ):
        folder = repo.db.table("folders").get(row["folder_id"])
        if folder is not None and folder["owner"] == user_id:
            engagement[row["url"]] += BOOKMARK_WEIGHT

    weights: dict[str, float] = defaultdict(float)
    pages = 0
    for url, strength in engagement.items():
        vec = vectorizer.tfidf_vector(url)
        if vec is None:
            continue
        theme, similarity = taxonomy.assign(vec)
        if similarity <= 0.0:
            continue
        # Damp raw engagement so one binge session doesn't own the profile.
        weights[theme.theme_id] += math.log1p(strength) * similarity
        pages += 1

    total = sum(weights.values())
    if total > 0:
        weights = defaultdict(float, {t: w / total for t, w in weights.items()})
    return UserProfile(user_id=user_id, weights=dict(weights), pages=pages)


def profile_similarity(a: UserProfile, b: UserProfile) -> float:
    """Cosine over theme weights — the 'far superior to URL overlap' metric."""
    dot = sum(w * b.weights.get(t, 0.0) for t, w in a.weights.items())
    na = math.sqrt(sum(w * w for w in a.weights.values()))
    nb = math.sqrt(sum(w * w for w in b.weights.values()))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return dot / (na * nb)


def url_overlap_similarity(
    repo: MemexRepository, user_a: str, user_b: str
) -> float:
    """The baseline the paper dismisses: Jaccard overlap of visited URLs."""
    urls_a = {v["url"] for v in repo.user_visits(user_a)}
    urls_b = {v["url"] for v in repo.user_visits(user_b)}
    union = urls_a | urls_b
    if not union:
        return 0.0
    return len(urls_a & urls_b) / len(union)


def similar_users(
    profiles: dict[str, UserProfile], user_id: str, *, k: int = 5,
) -> list[tuple[str, float]]:
    """The k most profile-similar other users."""
    me = profiles.get(user_id)
    if me is None:
        return []
    scored = [
        (other, profile_similarity(me, profile))
        for other, profile in profiles.items()
        if other != user_id
    ]
    scored.sort(key=lambda kv: (-kv[1], kv[0]))
    return scored[:k]
