"""Browsing-context recall: "what was I doing last time I surfed X?"

The second motivating query of §1 — "What was the Web neighborhood I was
surfing the last time I was looking for resources on classical music?" —
is answered by finding the user's most recent *session* containing visits
classified into the chosen topic folders, and replaying that session's
trail plus its hyperlink neighborhood.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.repository import MemexRepository
from .trails import TrailEdge, TrailGraph, TrailNode


@dataclass
class SessionContext:
    """One recalled browsing session."""

    user_id: str
    session_id: int
    started_at: float
    ended_at: float
    trail: list[str] = field(default_factory=list)        # visit order
    on_topic: list[str] = field(default_factory=list)     # topical subset

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    def to_payload(self) -> dict:
        return {
            "user_id": self.user_id,
            "session_id": self.session_id,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "trail": self.trail,
            "on_topic": self.on_topic,
        }


def recall_session(
    repo: MemexRepository,
    user_id: str,
    folder_ids: list[str],
    *,
    before: float | None = None,
) -> SessionContext | None:
    """The user's most recent session touching the given topic folders."""
    folder_set = set(folder_ids)
    deliberate = {
        row["url"] for fid in folder_ids for row in repo.folder_pages(fid)
    }

    def topical(row: dict) -> bool:
        return row["topic_folder"] in folder_set or row["url"] in deliberate

    visits = repo.user_visits(user_id, until=before)
    topical_visits = [v for v in visits if topical(v)]
    if not topical_visits:
        return None
    target_session = max(topical_visits, key=lambda v: v["at"])["session_id"]
    session_visits = sorted(
        (v for v in visits if v["session_id"] == target_session),
        key=lambda v: v["at"],
    )
    return SessionContext(
        user_id=user_id,
        session_id=target_session,
        started_at=session_visits[0]["at"],
        ended_at=session_visits[-1]["at"],
        trail=[v["url"] for v in session_visits],
        on_topic=[v["url"] for v in session_visits if topical(v)],
    )


def context_neighborhood(
    repo: MemexRepository,
    session: SessionContext,
    *,
    hops: int = 1,
    max_nodes: int = 30,
) -> TrailGraph:
    """The session's pages plus their *hops*-step hyperlink neighborhood —
    "where you were and where you were able to go"."""
    core_urls = list(dict.fromkeys(session.trail))
    frontier = list(core_urls)
    included: dict[str, int] = {url: 0 for url in core_urls}
    for depth in range(1, hops + 1):
        next_frontier: list[str] = []
        for url in frontier:
            for dst in repo.out_links(url):
                if dst not in included and len(included) < max_nodes:
                    included[dst] = depth
                    next_frontier.append(dst)
        frontier = next_frontier

    graph = TrailGraph(folder_paths=[])
    for url, depth in included.items():
        page = repo.db.table("pages").get(url)
        node = TrailNode(url=url, title=(page or {}).get("title"))
        node.visits = session.trail.count(url)
        node.score = 2.0 - depth + 0.1 * node.visits
        if node.visits:
            node.visitors.add(session.user_id)
        graph.nodes[url] = node
    # Click edges along the recorded trail.
    seen_edges: set[tuple[str, str]] = set()
    for src, dst in zip(session.trail, session.trail[1:]):
        if src == dst or src not in graph.nodes or dst not in graph.nodes:
            continue
        if (src, dst) not in seen_edges:
            seen_edges.add((src, dst))
            graph.edges.append(TrailEdge(src=src, dst=dst, clicks=1))
        else:
            for edge in graph.edges:
                if edge.src == src and edge.dst == dst:
                    edge.clicks += 1
    # Structural edges into the neighborhood.
    for url in included:
        for dst in repo.out_links(url):
            if dst in graph.nodes and (url, dst) not in seen_edges:
                seen_edges.add((url, dst))
                graph.edges.append(TrailEdge(src=url, dst=dst, hyperlink=True))
    return graph
