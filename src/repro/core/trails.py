"""Trail graphs: the data behind the trail tab (Figure 2).

A *trail graph* is a hypertext graph over recently surfed pages: nodes are
visited URLs, edges come from (a) observed referrer transitions — the
actual click trail — and (b) hyperlinks between visited pages, which fill
in "where you are able to go" around "where you are" (the spatial metaphor
of §2 / reference [9]).  Selecting a folder in the trail tab replays the
subgraph of recent community pages most likely to belong to that topic.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from ..storage.repository import MemexRepository
from ..storage.schema import (
    ARCHIVE_COMMUNITY,
    ASSOC_BOOKMARK,
    ASSOC_CORRECTION,
)


@dataclass
class TrailNode:
    """One page in a trail graph."""

    url: str
    title: str | None = None
    visits: int = 0
    visitors: set[str] = field(default_factory=set)
    last_visit: float = 0.0
    confidence: float = 0.0    # best topic confidence seen
    score: float = 0.0         # recency x popularity rank used for trimming


@dataclass
class TrailEdge:
    src: str
    dst: str
    clicks: int = 0            # observed referrer transitions
    hyperlink: bool = False    # structural link between trail pages


@dataclass
class TrailGraph:
    """The replayable browsing context for a topic."""

    folder_paths: list[str]
    nodes: dict[str, TrailNode] = field(default_factory=dict)
    edges: list[TrailEdge] = field(default_factory=list)

    def top_pages(self, k: int = 10) -> list[TrailNode]:
        return sorted(self.nodes.values(), key=lambda n: (-n.score, n.url))[:k]

    def to_payload(self) -> dict:
        """JSON-friendly form for the servlet response."""
        return {
            "folders": self.folder_paths,
            "nodes": [
                {
                    "url": n.url,
                    "title": n.title,
                    "visits": n.visits,
                    "visitors": sorted(n.visitors),
                    "last_visit": n.last_visit,
                    "score": n.score,
                }
                for n in sorted(self.nodes.values(), key=lambda n: (-n.score, n.url))
            ],
            "edges": [
                {
                    "src": e.src, "dst": e.dst,
                    "clicks": e.clicks, "hyperlink": e.hyperlink,
                }
                for e in self.edges
            ],
        }

    def __len__(self) -> int:
        return len(self.nodes)


def folder_and_descendants(repo: MemexRepository, folder_id: str) -> list[str]:
    """The folder id plus every descendant folder id."""
    out = [folder_id]
    frontier = [folder_id]
    while frontier:
        parent = frontier.pop()
        for row in repo.db.table("folders").select({"parent": parent}):
            out.append(row["folder_id"])
            frontier.append(row["folder_id"])
    return out


def build_trail_graph(
    repo: MemexRepository,
    folder_ids: list[str],
    *,
    folder_paths: list[str] | None = None,
    since: float | None = None,
    until: float | None = None,
    public_only: bool = True,
    user_id: str | None = None,
    include_urls: set[str] | None = None,
    min_confidence: float = 0.5,
    max_nodes: int = 40,
    half_life: float = 7 * 86400.0,
) -> TrailGraph:
    """Assemble the trail graph for a set of topic folders.

    Visits qualify when the classifier filed them into one of
    *folder_ids*, a user deliberately did, or the URL is in
    *include_urls* (the caller's own judgment of topical membership —
    MemexServer passes community pages "most likely to belong to the
    selected topic" this way).  With *public_only*, only
    community-archived visits from other users are included — plus all of
    the asking user's own visits, matching the paper's privacy model.
    Node scores decay exponentially with age (*half_life*) and grow with
    visit counts, and the graph is trimmed to *max_nodes* best nodes.
    """
    folder_set = set(folder_ids)
    extra = include_urls or set()
    # Only deliberate filings count here; classifier guesses already flow
    # in through the visits' topic_folder (confidence-gated below).
    deliberate_urls = {
        row["url"]
        for fid in folder_ids
        for row in repo.folder_pages(
            fid, sources=(ASSOC_BOOKMARK, ASSOC_CORRECTION),
        )
    }

    def qualifies(row: dict) -> bool:
        if public_only and row["archive_mode"] != ARCHIVE_COMMUNITY:
            if user_id is None or row["user_id"] != user_id:
                return False
        if since is not None and row["at"] < since:
            return False
        if until is not None and row["at"] > until:
            return False
        if row["url"] in deliberate_urls or row["url"] in extra:
            return True
        # Classifier guesses qualify only when confident: the model has no
        # reject class, so low-confidence labels are mostly shrugs.
        return (
            row["topic_folder"] in folder_set
            and (row["topic_confidence"] or 0.0) >= min_confidence
        )

    visits = repo.db.table("visits").select(qualifies, order_by="at")
    if not visits:
        return TrailGraph(folder_paths=folder_paths or [])

    now = max(v["at"] for v in visits)
    nodes: dict[str, TrailNode] = {}
    clicks: dict[tuple[str, str], int] = defaultdict(int)
    for v in visits:
        node = nodes.get(v["url"])
        if node is None:
            page = repo.db.table("pages").get(v["url"])
            node = TrailNode(url=v["url"], title=(page or {}).get("title"))
            nodes[v["url"]] = node
        node.visits += 1
        node.visitors.add(v["user_id"])
        node.last_visit = max(node.last_visit, v["at"])
        if v["topic_confidence"]:
            node.confidence = max(node.confidence, v["topic_confidence"])
        if v["referrer"]:
            clicks[(v["referrer"], v["url"])] += 1

    for node in nodes.values():
        age = max(0.0, now - node.last_visit)
        recency = math.exp(-age * math.log(2.0) / half_life)
        node.score = recency * (1.0 + math.log1p(node.visits)) * (
            1.0 + 0.5 * math.log1p(len(node.visitors))
        )

    keep = {
        n.url
        for n in sorted(nodes.values(), key=lambda n: (-n.score, n.url))[:max_nodes]
    }
    nodes = {url: n for url, n in nodes.items() if url in keep}

    edges: list[TrailEdge] = []
    for (src, dst), count in sorted(clicks.items()):
        if src in nodes and dst in nodes:
            edges.append(TrailEdge(src=src, dst=dst, clicks=count))
    # Structural hyperlinks among kept pages (beyond observed clicks).
    clicked = {(e.src, e.dst) for e in edges}
    for url in sorted(nodes):
        for dst in repo.out_links(url):
            if dst in nodes and (url, dst) not in clicked:
                edges.append(TrailEdge(src=url, dst=dst, hyperlink=True))

    return TrailGraph(
        folder_paths=folder_paths or [],
        nodes=nodes,
        edges=edges,
    )
