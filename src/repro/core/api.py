"""Top-level facade: build a Memex system, connect clients, replay surfing.

This is the entry point examples and benchmarks use::

    workload = build_workload(seed=1)
    system = MemexSystem.from_workload(workload)
    system.replay(workload.events)
    applet = system.connect("user00")
    applet.search("classical symphonies")
"""

from __future__ import annotations

from collections.abc import Iterable

from ..client.applet import MemexApplet
from ..client.browser import Browser
from ..obs import Tracer, null_tracer
from ..server.daemons import FetchedPage, FetchFn
from ..server.events import (
    ArchiveModeEvent,
    BookmarkEvent,
    FolderCreateEvent,
    FolderMoveEvent,
    SurfEvent,
    VisitEvent,
)
from ..webgen.corpus import WebCorpus
from ..webgen.workload import Workload
from .memex import MemexServer


def corpus_fetcher(corpus: WebCorpus) -> FetchFn:
    """The crawler's view of the simulated Web: URLs resolve to corpus
    pages; anything else is a dead link (returns None)."""

    def fetch(url: str) -> FetchedPage | None:
        page = corpus.pages.get(url)
        if page is None:
            return None
        return FetchedPage(
            url=page.url,
            title=page.title,
            text=page.text,
            out_links=tuple(page.out_links),
            front_page=page.front_page,
        )

    return fetch


class MemexSystem:
    """A Memex server plus its connected clients.

    The facade used by every example, benchmark, and the CLI: it owns one
    :class:`~repro.core.memex.MemexServer`, caches one
    :class:`~repro.client.applet.MemexApplet` per user, and knows how to
    replay a generated workload through those applets in the online
    regime (event batches interleaved with daemon ticks).  Usable as a
    context manager; :meth:`close` releases the underlying stores.

    ``client_tracer`` is the *applet-side* tracer: a separate instance
    from the server's so trace context crosses the wire in the request
    envelope (W3C-style ``traceparent``), never in-process span nesting.
    It defaults to a disabled tracer; pass
    ``Tracer(sample_every=8)``-style instances to trace client calls.
    """

    def __init__(
        self,
        server: MemexServer,
        *,
        client_tracer: Tracer | None = None,
    ) -> None:
        self.server = server
        self.client_tracer = (
            client_tracer if client_tracer is not None else null_tracer()
        )
        self._applets: dict[str, MemexApplet] = {}

    def close(self) -> None:
        self.server.close()

    def __enter__(self) -> "MemexSystem":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @classmethod
    def from_corpus(
        cls,
        corpus: WebCorpus,
        *,
        client_tracer: Tracer | None = None,
        **server_kwargs,
    ) -> "MemexSystem":
        """A system whose crawler fetches from the given simulated Web;
        *server_kwargs* pass through to :class:`MemexServer` (e.g.
        ``root=``, ``metrics=``, ``cache_reads=False``)."""
        return cls(
            MemexServer(corpus_fetcher(corpus), **server_kwargs),
            client_tracer=client_tracer,
        )

    @classmethod
    def from_workload(
        cls,
        workload: Workload,
        *,
        register_users: bool = True,
        community: str | None = None,
        **server_kwargs,
    ) -> "MemexSystem":
        """Build a system over the workload's corpus and (optionally)
        pre-register every simulated surfer."""
        system = cls.from_corpus(workload.corpus, **server_kwargs)
        if register_users:
            for profile in workload.profiles:
                system.register_user(
                    profile.user_id,
                    community=community or workload.name,
                )
        return system

    # -- accounts ---------------------------------------------------------------

    def register_user(
        self,
        user_id: str,
        *,
        community: str | None = None,
        archive_mode: str = "community",
        cipher_key: bytes | None = None,
    ) -> MemexApplet:
        """Create the account and return a connected applet."""
        if cipher_key is not None:
            self.server.transport.set_key(user_id, cipher_key)
        self.server.transport.request(user_id, {
            "servlet": "register_user",
            "community": community,
            "archive_mode": archive_mode,
        })
        return self.connect(user_id)

    def connect(self, user_id: str, *, browser: Browser | None = None) -> MemexApplet:
        """An applet session for an existing user (cached per user unless a
        browser is supplied)."""
        if browser is not None:
            return MemexApplet(
                self.server.transport, user_id,
                browser=browser, tracer=self.client_tracer,
            )
        if user_id not in self._applets:
            self._applets[user_id] = MemexApplet(
                self.server.transport, user_id, tracer=self.client_tracer,
            )
        return self._applets[user_id]

    # -- replay -------------------------------------------------------------------

    def replay(
        self,
        events: Iterable[SurfEvent],
        *,
        tick_every: int = 100,
        finish: bool = True,
        batch_size: int = 32,
    ) -> dict[str, int]:
        """Feed simulated surf events through real client applets,
        interleaving daemon work every *tick_every* events — the online
        regime of the deployed system.  Returns event counts.

        Replay is batched: archive events (visits, bookmarks) buffer in
        the applet and ship as one framed batch per run of up to
        *batch_size* consecutive same-user events (``batch_size<=1``
        restores one frame per event).  Buffers flush whenever the active
        user changes, before any synchronous call, at every daemon tick,
        and at the end — so events reach the server in exactly the global
        order they occurred and the final repository state matches
        per-event replay bit for bit.
        """
        counts = {"visit": 0, "bookmark": 0, "folder": 0, "move": 0, "mode": 0}
        processed = 0
        active: MemexApplet | None = None
        for event in events:
            applet = self.connect(event.user_id)
            applet.batch_size = batch_size
            if active is not None and active is not applet:
                # Preserve global event order across users: only runs of
                # consecutive same-user events share a batch frame.
                active.flush()
            active = applet
            if isinstance(event, VisitEvent):
                applet.record_visit(
                    event.url, at=event.at,
                    referrer=event.referrer, session_id=event.session_id,
                )
                counts["visit"] += 1
            elif isinstance(event, BookmarkEvent):
                applet.bookmark(event.url, event.folder_path, at=event.at)
                counts["bookmark"] += 1
            elif isinstance(event, FolderCreateEvent):
                applet.create_folder(event.folder_path, at=event.at)
                counts["folder"] += 1
            elif isinstance(event, FolderMoveEvent):
                applet.move_bookmark(
                    event.url, event.from_folder, event.to_folder, at=event.at,
                )
                counts["move"] += 1
            elif isinstance(event, ArchiveModeEvent):
                applet.set_archive_mode(event.mode)
                counts["mode"] += 1
            processed += 1
            if tick_every and processed % tick_every == 0:
                if active is not None:
                    active.flush()
                self.server.tick()
        if active is not None:
            active.flush()
        # Replay borrowed the cached applets for buffering; hand them back
        # in immediate-send mode so later direct calls behave classically.
        for applet in self._applets.values():
            applet.flush()
            applet.batch_size = 0
        if finish:
            self.server.process_background_work()
        return counts
