"""The six motivating queries of §1, as one typed API.

Each method corresponds, in order, to one bullet of the paper's
introduction.  They run server-side (benchmark E6 drives them directly);
the applet exposes the same operations over the HTTP tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .memex import DAY, MemexServer


@dataclass
class QueryAnswer:
    """A uniform answer envelope: what was asked, what came back."""

    question: str
    results: list[dict[str, Any]] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.results)


class MotivatingQueries:
    """Answer the paper's six introduction queries against a live server."""

    def __init__(self, server: MemexServer) -> None:
        self.server = server

    def _ask(self, user_id: str, servlet: str, **kwargs: Any) -> dict[str, Any]:
        response = self.server.registry.dispatch(
            {"servlet": servlet, "user_id": user_id, **kwargs}
        )
        if response.get("status") != "ok":
            raise RuntimeError(response.get("error", "query failed"))
        return response

    # Q1: "What was the URL I visited about six months back regarding
    #      compiler optimization at Rice University?"
    def url_from_memory(
        self,
        user_id: str,
        query: str,
        *,
        about_days_ago: float,
        tolerance_days: float = 45.0,
        k: int = 5,
    ) -> QueryAnswer:
        response = self._ask(
            user_id, "recall", query=query,
            around_days_ago=about_days_ago, tolerance_days=tolerance_days, k=k,
        )
        return QueryAnswer(
            question=f"URL about {query!r} ~{about_days_ago:.0f} days ago",
            results=response["hits"],
        )

    # Q2: "What was the Web neighborhood I was surfing the last time I was
    #      looking for resources on classical music?"
    def last_neighborhood(self, user_id: str, folder_path: str) -> QueryAnswer:
        response = self._ask(user_id, "context", folder_path=folder_path)
        if not response["found"]:
            return QueryAnswer(question=f"neighborhood for {folder_path!r}")
        return QueryAnswer(
            question=f"neighborhood for {folder_path!r}",
            results=response["neighborhood"]["nodes"],
            extra={"session": response["session"]},
        )

    # Q3: "Are there any popular sites, related to my experience on
    #      classical music, that have appeared in the last six months?"
    def fresh_popular_sites(
        self,
        user_id: str,
        query: str,
        *,
        since_days: float = 180.0,
        k: int = 10,
    ) -> QueryAnswer:
        response = self._ask(
            user_id, "resources", query=query, k=k, since_days=since_days,
        )
        return QueryAnswer(
            question=f"fresh popular sites about {query!r}",
            results=response["resources"],
            extra={"theme": response.get("theme_label")},
        )

    # Q4: "How is my ISP bill divided into access for work, travel, news,
    #      hobby and entertainment?"
    def bill_division(
        self, user_id: str, *, days: float = 30.0, monthly_rate: float = 20.0,
    ) -> QueryAnswer:
        response = self._ask(
            user_id, "bill", days=days, monthly_rate=monthly_rate,
        )
        return QueryAnswer(
            question=f"ISP bill division over {days:.0f} days",
            results=response["lines"],
        )

    # Q5: "What are the major topics relevant to my workplace?  Where and
    #      how do I fit into that map?"
    def community_topic_map(self, user_id: str) -> QueryAnswer:
        themes = self._ask(user_id, "themes_get")["themes"]
        profiles = self.server.current_profiles()
        me = profiles.get(user_id)
        my_weights = me.weights if me is not None else {}

        def annotate(node: dict[str, Any]) -> dict[str, Any]:
            node = dict(node)
            node["my_weight"] = my_weights.get(node["theme_id"], 0.0)
            node["children"] = [annotate(c) for c in node["children"]]
            return node

        return QueryAnswer(
            question="community topic map and my place in it",
            results=[annotate(t) for t in themes],
            extra={"my_top_themes": me.top_themes() if me is not None else []},
        )

    # Q6: "Who are the people who share my interest in recreational cycling
    #      most closely and are not likely to be computer professionals?"
    def interest_mates(
        self,
        user_id: str,
        query: str,
        *,
        exclude_query: str | None = None,
        k: int = 5,
    ) -> QueryAnswer:
        response = self._ask(
            user_id, "interest_mates", query=query,
            exclude_query=exclude_query, k=k,
        )
        return QueryAnswer(
            question=f"who shares my interest in {query!r}"
            + (f" excluding {exclude_query!r} folk" if exclude_query else ""),
            results=response["users"],
            extra={"theme": response.get("theme_label")},
        )

    # Convenience: answer all six for a user (the demo script).
    def answer_all(
        self,
        user_id: str,
        *,
        topical_query: str,
        folder_path: str,
        exclude_query: str | None = None,
        days_ago: float = 14.0,
    ) -> dict[str, QueryAnswer]:
        return {
            "q1_url_recall": self.url_from_memory(
                user_id, topical_query, about_days_ago=days_ago,
            ),
            "q2_neighborhood": self.last_neighborhood(user_id, folder_path),
            "q3_fresh_sites": self.fresh_popular_sites(user_id, topical_query),
            "q4_bill": self.bill_division(user_id),
            "q5_topic_map": self.community_topic_map(user_id),
            "q6_interest_mates": self.interest_mates(
                user_id, topical_query, exclude_query=exclude_query,
            ),
        }


__all__ = ["DAY", "MotivatingQueries", "QueryAnswer"]
