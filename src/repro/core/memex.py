"""MemexServer: the full server wired together.

One object owning the repositories (Figure 3's data stores), the daemon
fleet, and the servlet registry the HTTP tunnel dispatches into.  UI
servlets run synchronously (the "guaranteed immediate processing" class of
events); mining happens when the host ticks the daemon scheduler.

Time is simulation time: the server's clock advances to the latest event
timestamp it has seen, so replays are deterministic.
"""

from __future__ import annotations

import threading

from typing import Any

from ..cache import ReadPathCaches
from ..errors import AuthError, NotFitted, ServletError, error_payload
from ..mining.themes import ThemeDiscovery
from ..obs import (
    HealthMonitor,
    LogHub,
    MetricsHistory,
    MetricsRegistry,
    SloPolicy,
    Tracer,
)
from ..server.daemons import (
    ClassifierDaemon,
    CrawlerDaemon,
    DiscoveryDaemon,
    FetchFn,
    IndexerDaemon,
    PageVectorizer,
    ThemeDaemon,
)
from ..retrieval.covisit import CoVisitMinerDaemon, covisit_evidence, related_scores
from ..retrieval.dense import DenseIndexDaemon, DenseVectorIndex
from ..retrieval.fusion import canonical_url, rrf_fuse
from ..server.scheduler import DaemonScheduler
from ..server.servlets import ServletRegistry
from ..server.netserver import MemexSocketServer
from ..server.transport import HttpTunnelTransport
from ..shard.gather import LocalBackend, ShardDispatcher
from ..storage.lsm import LSMMaintenanceDaemon
from ..storage.repository import MemexRepository
from ..storage.schema import (
    ARCHIVE_COMMUNITY,
    ARCHIVE_OFF,
    ASSOC_BOOKMARK,
    ASSOC_CORRECTION,
    ASSOC_GUESS,
)
from ..text.index import InvertedIndex
from ..text.search import SearchEngine
from ..text.vectorize import cosine, text_vector, tfidf
from .billing import bill_breakdown
from .context import context_neighborhood, recall_session
from .profiles import UserProfile, build_profile, similar_users
from .recommend import recommend_pages
from .trails import build_trail_graph, folder_and_descendants

DAY = 86_400.0

#: Reciprocal-rank-fusion weights for hybrid search (DESIGN.md §13):
#: lexical evidence leads, dense similarity seconds it, trail adjacency
#: contributes but cannot override a strong text match on its own.
HYBRID_WEIGHTS = {"lexical": 1.0, "dense": 0.8, "covisit": 0.6}
#: Depth of the dense/co-visit rankings fed into fusion.
FUSE_DEPTH = 50
#: Top lexical hits whose co-visitation neighborhoods seed the trail leg.
COVISIT_SEEDS = 10
#: Rocchio beta: how strongly the lexical top hits' dense centroid pulls
#: the projected query (pseudo-relevance feedback for short queries).
PRF_FEEDBACK = 0.75


class MemexServer:
    """The Memex service for one community.

    Parameters
    ----------
    fetch:
        The crawler's view of the Web (see
        :func:`repro.core.api.corpus_fetcher` for the simulated one).
    root:
        Directory for persistent state; None keeps everything in memory.
    storage_engine:
        Term-store engine (``"btree"`` or ``"lsm"``, see
        :func:`repro.storage.open_engine`).  The LSM engine's
        flush/compaction daemon is registered with the scheduler
        automatically.
    codec:
        Record codec (``"json"``/``"binary"``) for the term store and
        the relational WAL.
    theme_discovery:
        Tuning for the theme daemon.
    metrics / tracer / log_hub:
        The server's observability hooks.  By default a fresh enabled
        :class:`MetricsRegistry`, :class:`Tracer`, and :class:`LogHub`
        are created; pass ``MetricsRegistry(enabled=False)`` to opt out
        of measurement, or a registry with an injected clock for
        deterministic tests.  The log hub is shared by every component
        (servlets, scheduler, daemons, versioning) so ``stats`` can
        return one merged, trace-correlated event stream.
    slow_request_threshold:
        Requests slower than this (seconds, simulation clock) log their
        full span tree as a ``slow_request`` event; ``None`` disables.
    slo_policies:
        Per-servlet :class:`SloPolicy` overrides for the health engine
        (missing servlets get the default policy).
    versioning_lag_threshold:
        The ``versioning`` readiness check degrades when any consumer
        lags more than this many published versions.
    caches:
        The version-aware read-path cache bundle.  By default a
        :class:`~repro.cache.ReadPathCaches` is built over the
        repository's version coordinator; pass your own to tune bounds,
        or ``cache_reads=False`` to disable read caching entirely.
    """

    def __init__(
        self,
        fetch: FetchFn,
        *,
        root: str | None = None,
        sync: bool = False,
        storage_engine: str = "btree",
        codec: str | None = None,
        theme_discovery: ThemeDiscovery | None = None,
        crawler_batch: int = 64,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        log_hub: LogHub | None = None,
        slow_request_threshold: float | None = 1.0,
        slo_policies: dict[str, SloPolicy] | None = None,
        versioning_lag_threshold: int = 64,
        caches: ReadPathCaches | None = None,
        cache_reads: bool = True,
        retrieval: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Default tracer samples 1-in-8 top-level spans: full traces for
        # debugging at a fraction of the per-dispatch cost.
        self.tracer = tracer if tracer is not None else Tracer(sample_every=8)
        self.logs = log_hub if log_hub is not None else LogHub(
            clock=self.metrics.clock,
        )
        self._now = 0.0
        # The repository stamps rows with simulation time, the same clock
        # servlets advance — replays stay deterministic.  ``sync`` turns on
        # fsync-per-commit durability (requires a ``root``).
        self.repo = MemexRepository(
            root, sync=sync, clock=lambda: self._now, metrics=self.metrics,
            tracer=self.tracer, log_hub=self.logs,
            storage_engine=storage_engine, codec=codec,
        )
        self.vectorizer = PageVectorizer(self.repo)
        self.index = InvertedIndex(self.repo.kv)
        self.search_engine = SearchEngine(self.index)

        clock = lambda: self._now  # noqa: E731 - tiny closure over sim time
        self.crawler = CrawlerDaemon(
            self.repo, fetch, batch_size=crawler_batch, clock=clock,
            tracer=self.tracer, log=self.logs.logger("crawler"),
        )
        self.indexer = IndexerDaemon(
            self.repo, self.index, vectorizer=self.vectorizer,
            tracer=self.tracer, log=self.logs.logger("indexer"),
        )
        # Hybrid-retrieval plane (DESIGN.md §13): the dense ANN index and
        # its consumer daemon, plus the co-visitation miner.  ``retrieval=
        # False`` reverts to the purely lexical server — the differential
        # baseline BENCH_retrieval.json compares against.
        self.retrieval_enabled = retrieval
        self.dense_index: DenseVectorIndex | None = None
        self.dense: DenseIndexDaemon | None = None
        self.covisit: CoVisitMinerDaemon | None = None
        if retrieval:
            self.dense_index = DenseVectorIndex(self.repo.kv)
            self.dense = DenseIndexDaemon(
                self.repo, self.vectorizer, self.dense_index,
            )
            self.covisit = CoVisitMinerDaemon(self.repo, clock=clock)
        covisit_decay = self.covisit.decay if self.covisit is not None else 0.0
        self.classifier = ClassifierDaemon(
            self.repo, self.vectorizer, clock=clock,
            covisit_provider=(
                (lambda urls: covisit_evidence(
                    self.repo, urls, now=self._now, decay=covisit_decay,
                ))
                if retrieval else None
            ),
            tracer=self.tracer, log=self.logs.logger("classifier"),
        )
        self.themes = ThemeDaemon(
            self.repo, self.vectorizer, discovery=theme_discovery,
        )
        self.discovery = DiscoveryDaemon(
            self.repo, self.vectorizer, self.themes,
            crawler=self.crawler, clock=clock,
        )
        self.scheduler = DaemonScheduler(
            parole_after=8, metrics=self.metrics, tracer=self.tracer,
            log=self.logs.logger("scheduler"),
        )
        self.scheduler.register(self.crawler, period=1)
        self.scheduler.register(self.indexer, period=1)
        if self.dense is not None:
            self.scheduler.register(self.dense, period=1)
        if self.covisit is not None:
            self.scheduler.register(self.covisit, period=2)
        self.scheduler.register(self.classifier, period=2)
        self.scheduler.register(self.themes, period=8)
        self.scheduler.register(self.discovery, period=8)
        # The LSM engine needs its flush/compaction cycle driven; the
        # daemon runs under the same quarantine/parole supervision as
        # every other background worker.
        if getattr(self.repo.kv, "engine_name", None) == "lsm":
            self.scheduler.register(LSMMaintenanceDaemon(self.repo.kv), period=4)
        # Metrics time series: sample the registry's mergeable raw
        # snapshot into a bounded ring; `metrics_pull` exposes it so the
        # router (and `repro top`) can compute rates without scraping.
        self.history = MetricsHistory(self.metrics)
        self.scheduler.register(self.history, period=4)

        # Read-path caches register as versioning consumers, so the
        # indexer/classifier/dense daemons must exist (and be registered)
        # first.
        self.caches: ReadPathCaches | None = None
        if cache_reads:
            self.caches = caches if caches is not None else ReadPathCaches(
                self.repo.versions, metrics=self.metrics,
                dense=self.dense.name if self.dense is not None else None,
            )

        self.registry = ServletRegistry(
            metrics=self.metrics, tracer=self.tracer,
            log=self.logs.logger("servlets"),
            slow_request_threshold=slow_request_threshold,
        )
        self._register_servlets()
        # Single-process mode is literally a one-shard cluster: every
        # request (tunnel or socket) routes through the same
        # ShardDispatcher the router uses, over one in-process backend.
        # With one healthy backend every merge is the identity, so this
        # is bit-identical to direct registry dispatch.
        self.dispatcher = ShardDispatcher(
            [LocalBackend(self.registry)], metrics=self.metrics,
        )
        self.transport = HttpTunnelTransport(
            self.registry, dispatcher=self.dispatcher,
        )

        # Health and SLO engine: liveness/readiness checks over the
        # components above, plus per-servlet burn-rate SLOs lazily bound
        # to the registry's latency/error instruments on first report.
        self._versioning_lag_threshold = versioning_lag_threshold
        self.health = HealthMonitor(
            clock=self.metrics.clock, policies=slo_policies,
        )
        self.health.add_check("storage", self._check_storage)
        self.health.add_check("scheduler", self._check_scheduler)
        self.health.add_check("versioning", self._check_versioning)

        self._profiles: dict[str, UserProfile] = {}
        self._profiles_built_at = (-1, -1)  # (visit count, theme rebuilds)
        # Server lock ("server" rank in repro.locks.LOCK_ORDER, above the
        # repository lock it nests over): guards the simulation clock,
        # the lazy profile rebuild, and the server-level check-then-act
        # compounds (folder-path creation, user registration) that span
        # several repository calls.
        self._server_lock = threading.RLock()

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, at: float | None) -> float:
        if at is not None:
            with self._server_lock:
                self._now = max(self._now, float(at))
        return self._now

    # ------------------------------------------------------------- daemon API

    def process_background_work(self, *, max_rounds: int = 1000) -> int:
        """Run daemons until quiescent (tests and examples call this)."""
        done = self.scheduler.run_until_idle(max_rounds=max_rounds)
        if self.caches is not None:
            self.caches.sync()
        return done

    def tick(self, rounds: int = 1) -> int:
        """Run one scheduler round per *rounds*; returns work done.

        Also syncs the read-path cache consumers so an idle cache never
        pins published versions against :meth:`VersionCoordinator.gc`.
        """
        done = self.scheduler.tick(rounds)
        if self.caches is not None:
            self.caches.sync()
        return done

    # ---------------------------------------------------------------- helpers

    def _origin(self) -> str | None:
        """Traceparent of the active servlet span, if the request is
        traced — stamped on visits, crawl queue entries, and versioning
        items so daemon spans link back to the originating request."""
        ctx = self.tracer.current_context()
        return ctx.to_traceparent() if ctx is not None else None

    def _require_user(self, request: dict[str, Any]) -> dict[str, Any]:
        user_id = request.get("user_id")
        user = self.repo.get_user(user_id) if isinstance(user_id, str) else None
        if user is None:
            raise AuthError(f"unknown user {user_id!r}")
        return user

    def folder_id(self, owner: str, path: str) -> str:
        canonical = "/".join(p for p in path.split("/") if p)
        return f"{owner}:{canonical}"

    def _ensure_folder(self, owner: str, path: str, at: float) -> str:
        parts = [p for p in path.split("/") if p]
        parent: str | None = None
        built: list[str] = []
        with self._server_lock:
            for part in parts:
                built.append(part)
                fid = self.folder_id(owner, "/".join(built))
                if self.repo.db.table("folders").get(fid) is None:
                    self.repo.add_folder(fid, owner, part, parent, now=at)
                parent = fid
        if parent is None:
            raise ValueError("empty folder path")
        return parent

    def _folder_path(self, folder_id: str) -> str:
        return folder_id.split(":", 1)[1] if ":" in folder_id else folder_id

    def _user_folder_ids(self, owner: str, path: str) -> list[str]:
        fid = self.folder_id(owner, path)
        if self.repo.db.table("folders").get(fid) is None:
            return []
        return folder_and_descendants(self.repo, fid)

    def _query_vector(self, query: str):
        return text_vector(self.vectorizer.vocab, query)

    def _match_theme(self, query: str):
        """Best (theme, similarity) for a free-text topic query."""
        taxonomy = self.themes.taxonomy
        if taxonomy is None:
            return None, 0.0
        qvec = self._query_vector(query)
        if not qvec:
            return None, 0.0
        best, best_sim = None, 0.0
        for theme in taxonomy.leaves():
            sim = cosine(qvec, theme.center)
            if sim > best_sim:
                best, best_sim = theme, sim
        return best, best_sim

    def current_profiles(self) -> dict[str, UserProfile]:
        """Per-user theme profiles, rebuilt lazily when state moved on."""
        taxonomy = self.themes.taxonomy
        if taxonomy is None:
            return {}
        key = (len(self.repo.db.table("visits")), self.themes.rebuild_count)
        with self._server_lock:
            if key != self._profiles_built_at:
                self._profiles = {
                    row["user_id"]: build_profile(
                        self.repo, self.vectorizer, taxonomy, row["user_id"],
                    )
                    for row in self.repo.db.table("users").scan()
                }
                self._profiles_built_at = key
            return self._profiles

    # ---------------------------------------------------------------- servlets

    def _register_servlets(self) -> None:
        handlers = {
            "register_user": self._sv_register_user,
            "set_archive_mode": self._sv_set_archive_mode,
            "visit": self._sv_visit,
            "import_history": self._sv_import_history,
            "bookmark": self._sv_bookmark,
            "folder_create": self._sv_folder_create,
            "folder_move": self._sv_folder_move,
            "folders_get": self._sv_folders_get,
            "search": self._sv_search,
            "related_pages": self._sv_related_pages,
            "recall": self._sv_recall,
            "trail": self._sv_trail,
            "context": self._sv_context,
            "themes_get": self._sv_themes_get,
            "resources": self._sv_resources,
            "bill": self._sv_bill,
            "profile_similar": self._sv_profile_similar,
            "interest_mates": self._sv_interest_mates,
            "recommend": self._sv_recommend,
            "propose_hierarchy": self._sv_propose_hierarchy,
            "apply_hierarchy": self._sv_apply_hierarchy,
            "popular_near_trail": self._sv_popular_near_trail,
            "stats": self._sv_stats,
            "health": self._sv_health,
            "metrics_pull": self._sv_metrics_pull,
        }
        # Batch handlers group-commit runs of same-servlet items inside a
        # batch envelope (see ServletRegistry.dispatch_batch).
        batch_handlers = {"visit": self._sv_visit_many}
        for name, handler in handlers.items():
            self.registry.register(
                name, handler, batch_handler=batch_handlers.get(name),
            )

    # -- account management ----------------------------------------------------

    def _sv_register_user(self, request: dict[str, Any]) -> dict[str, Any]:
        user_id = request["user_id"]
        with self._server_lock:
            if self.repo.get_user(user_id) is not None:
                return {"created": False}
            self._advance(request.get("at"))
            self.repo.add_user(
                user_id,
                name=request.get("name"),
                community=request.get("community"),
                archive_mode=request.get("archive_mode", ARCHIVE_COMMUNITY),
                now=self._now,
            )
        return {"created": True}

    def _sv_set_archive_mode(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        self.repo.set_archive_mode(user["user_id"], request["mode"])
        return {"mode": request["mode"]}

    # -- archiving ---------------------------------------------------------------

    def _sv_visit(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        mode = user["archive_mode"]
        if mode == ARCHIVE_OFF:
            return {"archived": False}
        at = self._advance(request.get("at"))
        url = request["url"]
        origin = self._origin()
        self.repo.upsert_page(url, now=at)
        visit_id = self.repo.record_visit(
            user["user_id"], url,
            at=at,
            session_id=int(request.get("session_id", 0)),
            referrer=request.get("referrer"),
            archive_mode=mode,
            origin=origin,
        )
        self.crawler.enqueue(url, origin=origin)
        return {"archived": True, "visit_id": visit_id}

    def _sv_visit_many(self, requests: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Batch leg of the visit servlet: per-item semantics identical to
        :meth:`_sv_visit` (auth, archive-off, clock clamping, crawl
        enqueue) but ONE repository group commit — one WAL record and one
        fsync — for the whole run instead of several per event.  Invalid
        items get typed per-item errors; valid neighbours still commit.
        """
        responses: list[dict[str, Any] | None] = [None] * len(requests)
        items: list[dict[str, Any]] = []
        slots: list[int] = []
        for i, request in enumerate(requests):
            try:
                user = self._require_user(request)
                mode = user["archive_mode"]
                if mode == ARCHIVE_OFF:
                    responses[i] = {"archived": False}
                    continue
                url = request["url"]
                at = self._advance(request.get("at"))
                items.append({
                    "user_id": user["user_id"],
                    "url": url,
                    "at": at,
                    "session_id": int(request.get("session_id", 0)),
                    "referrer": request.get("referrer"),
                    "archive_mode": mode,
                    # Per-item origin: each envelope item carries its own
                    # traceparent (already validated by dispatch_batch).
                    "origin": request.get("traceparent"),
                })
                slots.append(i)
            except Exception as exc:  # noqa: BLE001 - per-item isolation
                responses[i] = error_payload(exc)
        visit_ids = self.repo.record_visit_batch(items)
        for item in items:
            self.crawler.enqueue(item["url"], origin=item["origin"])
        for slot, visit_id in zip(slots, visit_ids):
            responses[slot] = {"archived": True, "visit_id": visit_id}
        return responses

    def _sv_import_history(self, request: dict[str, Any]) -> dict[str, Any]:
        """Bulk-import a raw browser history: timestamped URLs with no
        session structure.  Visits are archived with ``session_id = 0``,
        then the 30-minute gap rule (core.sessions) reconstructs sessions
        so the trail/context tabs work on pre-Memex history too."""
        from .sessions import assign_session_ids

        user = self._require_user(request)
        mode = user["archive_mode"]
        if mode == ARCHIVE_OFF:
            return {"imported": 0, "sessions_assigned": 0}
        entries = request["entries"]
        origin = self._origin()
        imported = 0
        for entry in entries:
            url = entry["url"]
            at = self._advance(entry["at"])
            self.repo.upsert_page(url, now=at)
            self.repo.record_visit(
                user["user_id"], url,
                at=at, session_id=0,
                referrer=entry.get("referrer"),
                archive_mode=mode,
                origin=origin,
            )
            self.crawler.enqueue(url, origin=origin)
            imported += 1
        assigned = assign_session_ids(self.repo, user["user_id"])
        return {"imported": imported, "sessions_assigned": assigned}

    def _sv_bookmark(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        at = self._advance(request.get("at"))
        url = request["url"]
        folder = self._ensure_folder(user["user_id"], request["folder_path"], at)
        self.repo.upsert_page(url, now=at)
        # A deliberate bookmark supersedes any guess for this user+url.
        for row in self.repo.page_folders(url):
            if row["source"] == ASSOC_GUESS:
                owner = self.repo.db.table("folders").get(row["folder_id"])
                if owner is not None and owner["owner"] == user["user_id"]:
                    self.repo.db.delete("folder_pages", row["assoc_id"])
        assoc_id = self.repo.associate(folder, url, ASSOC_BOOKMARK, now=at)
        self.crawler.enqueue(url, origin=self._origin())
        return {"assoc_id": assoc_id, "folder_id": folder}

    def _sv_folder_create(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        at = self._advance(request.get("at"))
        folder = self._ensure_folder(user["user_id"], request["path"], at)
        return {"folder_id": folder}

    def _sv_folder_move(self, request: dict[str, Any]) -> dict[str, Any]:
        """Cut/paste correction: strongest supervision for the classifier."""
        user = self._require_user(request)
        at = self._advance(request.get("at"))
        url = request["url"]
        owner = user["user_id"]
        removed = 0
        if request.get("from_folder"):
            src = self.folder_id(owner, request["from_folder"])
            removed = self.repo.dissociate(src, url)
        else:
            # Remove this user's guesses wherever they are.
            for row in self.repo.page_folders(url):
                folder = self.repo.db.table("folders").get(row["folder_id"])
                if (
                    folder is not None
                    and folder["owner"] == owner
                    and row["source"] == ASSOC_GUESS
                ):
                    self.repo.db.delete("folder_pages", row["assoc_id"])
                    removed += 1
        dst = self._ensure_folder(owner, request["to_folder"], at)
        assoc_id = self.repo.associate(dst, url, ASSOC_CORRECTION, now=at)
        # Corrections also relabel this user's visits of the page.
        for visit in self.repo.db.table("visits").select(
            {"user_id": owner, "url": url}
        ):
            self.repo.classify_visit(visit["visit_id"], dst, 1.0)
        return {"assoc_id": assoc_id, "removed": removed, "folder_id": dst}

    def _sv_folders_get(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        owner = user["user_id"]
        folders = []
        for row in sorted(
            self.repo.user_folders(owner), key=lambda r: r["folder_id"]
        ):
            items = [
                {
                    "url": assoc["url"],
                    "source": assoc["source"],
                    "confidence": assoc["confidence"],
                    "guess": assoc["source"] == ASSOC_GUESS,
                }
                for assoc in sorted(
                    self.repo.folder_pages(row["folder_id"]),
                    key=lambda a: a["assoc_id"],
                )
            ]
            folders.append({
                "path": self._folder_path(row["folder_id"]),
                "name": row["name"],
                "items": items,
            })
        return {"folders": folders}

    # -- search and recall ----------------------------------------------------------

    def _sv_search(self, request: dict[str, Any]) -> dict[str, Any]:
        """Paginated full-text search.

        ``limit`` (default: legacy ``k``) and ``offset`` window the ranked
        result list; the response always reports ``total`` matches and
        ``has_more``, so clients page through million-hit archives instead
        of shipping unbounded lists.

        ``mode`` selects the ranking: ``ranked`` (BM25; ``lexical`` is a
        wire alias), ``boolean``, or ``hybrid`` — reciprocal-rank fusion
        of the lexical, dense-vector, and co-visitation rankings, deduped
        on canonical URL *before* ``total`` is counted (DESIGN.md §13).
        ``hybrid`` falls back to ``ranked`` on a server constructed with
        ``retrieval=False``.

        Responses are served from the search cache keyed by the full
        request shape (query, mode, scope, user for ``mine``, limit,
        offset); validity is the indexer's watermark plus the page/visit
        change stamps the candidate sets read (hybrid entries also fold
        in the covisits stamp and the dense consumer's watermark).
        """
        user = self._require_user(request)
        query = request["query"]
        k = int(request.get("k", 10))
        limit = int(request.get("limit", k))
        offset = int(request.get("offset", 0))
        if limit < 0 or offset < 0:
            raise ValueError("limit and offset must be non-negative")
        scope = request.get("scope", "all")
        mode = request.get("mode", "ranked")
        if mode == "lexical":
            # Normalized BEFORE the cache key so both spellings share
            # one entry (and byte-identical responses).
            mode = "ranked"
        hybrid = mode == "hybrid" and self.retrieval_enabled

        cache = self.caches.search if self.caches is not None else None
        token = extra = None
        if cache is not None:
            key = (
                query, mode, scope,
                user["user_id"] if scope == "mine" else "",
                limit, offset,
            )
            stamps = self.repo.stamps
            # Titles come from the pages table; mine/community candidate
            # sets additionally read the visits table.
            extra = (
                (stamps.pages, stamps.visits)
                if scope in ("mine", "community")
                else (stamps.pages,)
            )
            if hybrid:
                # The fused ranking also reads the co-visitation matrix
                # and the dense ANN index; the dense consumer is not in
                # this cache's watch set, so its watermark rides the
                # extra stamp instead.
                extra = (*extra, stamps.covisits,
                         self.repo.versions.watermark(self.dense.name))
            cached = cache.get(key, extra=extra)
            if cached is not None:
                return cached
            # Token captured BEFORE reading the index: a version published
            # mid-compute must invalidate this entry, not hide behind it.
            token = cache.token()

        candidates: set[str] | None = None
        if scope == "mine":
            candidates = {
                v["url"] for v in self.repo.user_visits(user["user_id"])
            }
        elif scope == "community":
            candidates = {v["url"] for v in self.repo.community_visits()}
        if mode == "boolean":
            from ..text.query import ranked_boolean_search

            hits = ranked_boolean_search(self.search_engine, query, k=None)
            if candidates is not None:
                hits = [h for h in hits if h.doc_id in candidates]
        else:
            hits = self.search_engine.search(
                query, k=None, candidates=candidates)
        if hybrid:
            fused = self._fuse_hybrid(query, hits, candidates)
            # Post-dedup accounting: fusion folds URL variants into one
            # canonical page, so total/has_more count the deduped list —
            # counting first and deduping later drifts the page window.
            total = len(fused)
            page_rows = fused[offset:offset + limit]
        else:
            total = len(hits)
            page_rows = [
                (h.doc_id, h.score) for h in hits[offset:offset + limit]
            ]
        payloads = []
        for url, score in page_rows:
            payload = self._hit_payload(url, score)
            payload["snippet"] = self._snippet_for(url, query)
            payloads.append(payload)
        response = {
            "hits": payloads,
            "total": total,
            "offset": offset,
            "has_more": offset + len(payloads) < total,
        }
        if cache is not None:
            cache.put(key, response, token=token, extra=extra)
        return response

    def _fuse_hybrid(
        self,
        query: str,
        lexical_hits: list[Any],
        candidates: set[str] | None,
    ) -> list[tuple[str, float]]:
        """Fuse the lexical, dense, and co-visitation rankings (RRF)."""
        assert self.dense_index is not None and self.covisit is not None
        lexical = [h.doc_id for h in lexical_hits]
        qvec = tfidf(
            self.vectorizer.vocab,
            text_vector(self.vectorizer.vocab, query),
        )
        # Dense leg with Rocchio-style pseudo-relevance feedback: a
        # two-word query projects to a nearly arbitrary direction in the
        # reduced space, so pull it toward the centroid of the top lexical
        # hits' document vectors — "more documents like what matched",
        # not "documents near these two words".
        qdense = self.dense_index.projector.project(qvec)
        feedback = [
            vec for vec in (
                self.dense_index.vector(url)
                for url in lexical[:COVISIT_SEEDS]
            ) if vec is not None
        ]
        if feedback:
            centroid = [sum(col) / len(feedback) for col in zip(*feedback)]
            qdense = [
                a + PRF_FEEDBACK * b for a, b in zip(qdense, centroid)
            ]
        dense = [
            url for url, _ in self.dense_index.query(
                qdense, k=FUSE_DEPTH, candidates=candidates,
            )
        ]
        # Trail leg: aggregate the co-visitation neighborhoods of the top
        # lexical hits — pages the community surfs *together with* the
        # textual matches, whether or not their own text matches.
        cov_scores: dict[str, float] = {}
        for seed in lexical[:COVISIT_SEEDS]:
            for other, score in related_scores(
                self.repo, seed,
                now=self._now, decay=self.covisit.decay, k=FUSE_DEPTH,
            ):
                if candidates is not None and other not in candidates:
                    continue
                cov_scores[other] = cov_scores.get(other, 0.0) + score
        covisit = [
            url for url, _ in sorted(
                cov_scores.items(), key=lambda kv: (-kv[1], kv[0]),
            )[:FUSE_DEPTH]
        ]
        return rrf_fuse(
            [
                (HYBRID_WEIGHTS["lexical"], lexical),
                (HYBRID_WEIGHTS["dense"], dense),
                (HYBRID_WEIGHTS["covisit"], covisit),
            ],
            key=canonical_url,
        )

    def _sv_related_pages(self, request: dict[str, Any]) -> dict[str, Any]:
        """Pages the community surfs together with ``url`` (DESIGN.md §13).

        Fuses the co-visitation neighborhood (what trails say) with the
        dense nearest neighbours (what the text says), reciprocal-rank
        style, deduped on canonical URL.  Returns up to ``k`` rows and the
        post-dedup neighborhood size as ``total``.  Requires a server
        constructed with ``retrieval=True``.
        """
        self._require_user(request)
        url = request["url"]
        k = int(request.get("k", 10))
        if k < 0:
            raise ValueError("k must be non-negative")
        if not self.retrieval_enabled:
            raise ServletError(
                "related_pages requires a server with retrieval enabled")
        assert self.dense_index is not None and self.covisit is not None

        cache = self.caches.related if self.caches is not None else None
        token = extra = None
        canon = canonical_url(url)
        if cache is not None:
            key = (canon, k)
            stamps = self.repo.stamps
            # covisits stamp covers the matrix; pages covers titles.
            extra = (stamps.covisits, stamps.pages)
            cached = cache.get(key, extra=extra)
            if cached is not None:
                return cached
            token = cache.token()

        cov_scores: dict[str, float] = {}
        seeds = {url, canon}
        for seed in sorted(seeds):
            for other, score in related_scores(
                self.repo, seed,
                now=self._now, decay=self.covisit.decay, k=FUSE_DEPTH,
            ):
                cov_scores[other] = max(cov_scores.get(other, 0.0), score)
        covisit = [
            u for u, _ in sorted(
                cov_scores.items(), key=lambda kv: (-kv[1], kv[0]),
            )[:FUSE_DEPTH]
        ]
        dense = [
            u for u, _ in self.dense_index.neighbors(url, k=FUSE_DEPTH)
        ]
        fused = [
            (u, score) for u, score in rrf_fuse(
                [
                    (HYBRID_WEIGHTS["lexical"], covisit),
                    (HYBRID_WEIGHTS["dense"], dense),
                ],
                key=canonical_url,
            )
            if canonical_url(u) != canon   # never recommend the page itself
        ]
        rows = []
        for u, score in fused[:k]:
            page = self.repo.db.table("pages").get(u)
            rows.append({
                "url": u,
                "score": round(score, 6),
                "title": (page or {}).get("title"),
            })
        response = {"url": url, "related": rows, "total": len(fused)}
        if cache is not None:
            cache.put(key, response, token=token, extra=extra)
        return response

    def _snippet_for(self, url: str, query: str) -> str | None:
        from ..text.snippets import make_snippet

        text = self.repo.page_text(url)
        if text is None:
            return None
        return make_snippet(text, query).marked()

    def _sv_recall(self, request: dict[str, Any]) -> dict[str, Any]:
        """Temporal recall: full-text search over MY visits around a time."""
        user = self._require_user(request)
        query = request["query"]
        around = self._now - float(request["around_days_ago"]) * DAY
        tolerance = float(request.get("tolerance_days", 45.0)) * DAY
        k = int(request.get("k", 5))
        window = {
            v["url"]: v["at"]
            for v in self.repo.user_visits(
                user["user_id"], since=around - tolerance, until=around + tolerance,
            )
        }
        hits = self.search_engine.search(query, k=k * 3, candidates=set(window))
        ranked = []
        for hit in hits:
            # Prefer hits whose visit time is nearest the asked-about time.
            nearness = 1.0 / (1.0 + abs(window[hit.doc_id] - around) / DAY)
            ranked.append((hit.doc_id, hit.score * (0.5 + nearness)))
        ranked.sort(key=lambda kv: (-kv[1], kv[0]))
        return {
            "hits": [
                {**self._hit_payload(url, score), "visited_at": window[url]}
                for url, score in ranked[:k]
            ]
        }

    def _hit_payload(self, url: str, score: float) -> dict[str, Any]:
        page = self.repo.db.table("pages").get(url)
        return {"url": url, "score": score, "title": (page or {}).get("title")}

    # -- trail and context -------------------------------------------------------------

    def _sv_trail(self, request: dict[str, Any]) -> dict[str, Any]:
        """Trail replay for one topic folder (Figure 1's surf-trail view).

        Cached per (owner, folder path, window); validity is the indexer
        and classifier watermarks plus every change stamp the replay
        reads (visits, folder structure, associations, classifications,
        pages, links), the owner's model version, and the simulation
        clock the window anchors to.
        """
        user = self._require_user(request)
        owner = user["user_id"]
        path = request["folder_path"]
        window_days = float(request.get("window_days", 14.0))

        cache = self.caches.trails if self.caches is not None else None
        token = extra = None
        if cache is not None:
            key = ("trail", owner, path, window_days)
            extra = self._trail_extra(owner)
            cached = cache.get(key, extra=extra)
            if cached is not None:
                return cached
            token = cache.token()

        folder_ids = self._user_folder_ids(owner, path)
        since = self._now - window_days * DAY
        include = self._community_pages_for_folder(owner, folder_ids, since=since)
        graph = build_trail_graph(
            self.repo, folder_ids,
            folder_paths=[path],
            since=since,
            user_id=owner,
            include_urls=include,
        )
        response = {"trail": graph.to_payload()}
        if cache is not None:
            cache.put(key, response, token=token, extra=extra)
        return response

    def _trail_extra(self, owner: str) -> tuple:
        """Non-versioned validity stamps for trail-shaped read paths:
        every UI-write counter the replay reads, the owner's classifier
        model version, and the simulation clock (recency windows are
        anchored to *now*, which only moves with incoming events)."""
        stamps = self.repo.stamps
        return (
            stamps.visits, stamps.assocs, stamps.classifications,
            stamps.folders, stamps.pages, stamps.links,
            self.classifier.model_version(owner), self._now,
        )

    def _community_pages_for_folder(
        self,
        owner: str,
        folder_ids: list[str],
        *,
        since: float | None = None,
        similarity_quantile: float = 0.25,
    ) -> set[str]:
        """Community-visited pages 'most likely to belong to the selected
        topic': other users' public pages run through MY folder model,
        with a calibrated absolute-similarity floor.

        The classifier alone cannot reject out-of-domain pages (it has no
        reject class, and naive-Bayes posteriors saturate on long
        documents), so a page must ALSO be at least as similar to the
        folder's centroid as the folder's own *similarity_quantile*-worst
        deliberate member — a per-folder calibration with no magic
        constants.

        Per-page predictions — the hot inner loop of trail replay and
        popular-near-trail — are served from the classify cache keyed
        (owner, url, model version): a page's vector never changes after
        its first fetch, so the key fully determines the decision.
        """
        from ..text.vectorize import centroid as _centroid

        try:
            model = self.classifier.model_for(owner)
        except NotFitted:
            return set()
        folder_set = set(folder_ids)
        member_vecs = []
        for fid in folder_ids:
            for row in self.repo.folder_pages(
                fid, sources=(ASSOC_BOOKMARK, ASSOC_CORRECTION),
            ):
                vec = self.vectorizer.tfidf_vector(row["url"])
                if vec is not None:
                    member_vecs.append(vec)
        if not member_vecs:
            return set()
        center = _centroid(member_vecs)
        member_sims = sorted(cosine(v, center) for v in member_vecs)
        floor = member_sims[int(similarity_quantile * (len(member_sims) - 1))]

        cache = self.caches.classify if self.caches is not None else None
        model_version = self.classifier.model_version(owner)
        token = cache.token() if cache is not None else None

        out: set[str] = set()
        seen: set[str] = set()
        for visit in self.repo.community_visits(since=since):
            if visit["user_id"] == owner or visit["url"] in seen:
                continue
            seen.add(visit["url"])
            url = visit["url"]
            vec = self.vectorizer.vector(url)
            if vec is None:
                continue
            tvec = self.vectorizer.tfidf_vector(url)
            if tvec is None or cosine(tvec, center) < floor:
                continue
            folder = None
            ckey = (owner, url, model_version)
            if cache is not None:
                folder = cache.get(ckey)
            if folder is None:
                # Independent per-page prediction: batch relaxation would
                # let confidently-wrong labels cascade through off-topic
                # clusters.
                folder, _conf = model.predict(url, vec)
                if cache is not None:
                    cache.put(ckey, folder, token=token)
            if folder in folder_set:
                out.add(url)
        return out

    def _sv_context(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        owner = user["user_id"]
        folder_ids = self._user_folder_ids(owner, request["folder_path"])
        session = recall_session(self.repo, owner, folder_ids)
        if session is None:
            return {"found": False, "session": None, "neighborhood": None}
        graph = context_neighborhood(self.repo, session)
        return {
            "found": True,
            "session": session.to_payload(),
            "neighborhood": graph.to_payload(),
        }

    # -- community mining views -----------------------------------------------------------

    def _sv_themes_get(self, request: dict[str, Any]) -> dict[str, Any]:
        self._require_user(request)
        taxonomy = self.themes.taxonomy
        if taxonomy is None:
            return {"themes": []}

        def payload(theme, depth: int) -> dict[str, Any]:
            return {
                "theme_id": theme.theme_id,
                "label": theme.label,
                "depth": depth,
                "folders": [list(f) for f in theme.folders],
                "num_users": theme.num_users,
                "weight": theme.weight,
                "children": [payload(c, depth + 1) for c in theme.children],
            }

        return {"themes": [payload(t, 0) for t in taxonomy.roots]}

    def _sv_resources(self, request: dict[str, Any]) -> dict[str, Any]:
        self._require_user(request)
        theme, sim = self._match_theme(request["query"])
        if theme is None or sim <= 0.0:
            return {"resources": [], "theme": None}
        k = int(request.get("k", 10))
        since_days = request.get("since_days")
        out = []
        for res in self.discovery.for_theme(theme.theme_id):
            if since_days is not None and res.first_seen < self._now - float(since_days) * DAY:
                continue
            page = self.repo.db.table("pages").get(res.url)
            out.append({
                "url": res.url,
                "title": (page or {}).get("title"),
                "score": res.score,
                "authority": res.authority,
                "similarity": res.similarity,
                "first_seen": res.first_seen,
            })
            if len(out) >= k:
                break
        return {"resources": out, "theme": theme.theme_id, "theme_label": theme.label}

    def _sv_bill(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        days = float(request["days"])
        lines = bill_breakdown(
            self.repo, user["user_id"],
            since=self._now - days * DAY,
            monthly_rate=float(request.get("monthly_rate", 20.0)),
        )
        return {"lines": [l.to_payload() for l in lines]}

    def _sv_profile_similar(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        profiles = self.current_profiles()
        ranked = similar_users(
            profiles, user["user_id"], k=int(request.get("k", 5)),
        )
        return {"users": [{"user_id": u, "similarity": s} for u, s in ranked]}

    def _sv_interest_mates(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        theme, sim = self._match_theme(request["query"])
        if theme is None or sim <= 0.0:
            return {"users": [], "theme": None}
        exclude_theme = None
        if request.get("exclude_query"):
            exclude_theme, ex_sim = self._match_theme(request["exclude_query"])
            if ex_sim <= 0.0:
                exclude_theme = None
        profiles = self.current_profiles()
        scored = []
        for other, profile in profiles.items():
            if other == user["user_id"]:
                continue
            weight = profile.weights.get(theme.theme_id, 0.0)
            if weight <= 0.0:
                continue
            if (
                exclude_theme is not None
                and profile.weights.get(exclude_theme.theme_id, 0.0) > 0.2
            ):
                continue
            scored.append({"user_id": other, "interest": weight})
        scored.sort(key=lambda d: (-d["interest"], d["user_id"]))
        return {
            "users": scored[: int(request.get("k", 5))],
            "theme": theme.theme_id,
            "theme_label": theme.label,
        }

    def _sv_recommend(self, request: dict[str, Any]) -> dict[str, Any]:
        user = self._require_user(request)
        profiles = self.current_profiles()
        recs = recommend_pages(
            self.repo, self.vectorizer, self.themes.taxonomy,
            profiles, user["user_id"], k=int(request.get("k", 10)),
        )
        return {"pages": [r.to_payload() for r in recs]}

    def _sv_propose_hierarchy(self, request: dict[str, Any]) -> dict[str, Any]:
        """§2: propose a topic hierarchy over one folder's links."""
        from .organize import propose_hierarchy

        user = self._require_user(request)
        folder_ids = self._user_folder_ids(user["user_id"], request["folder_path"])
        urls = sorted({
            row["url"] for fid in folder_ids for row in self.repo.folder_pages(fid)
        })
        if not urls:
            return {"proposal": None, "reason": "folder is empty"}
        proposal = propose_hierarchy(
            self.vectorizer, urls,
            min_cluster=int(request.get("min_cluster", 3)),
            max_depth=int(request.get("max_depth", 3)),
        )
        return {"proposal": proposal.to_payload()}

    def _sv_apply_hierarchy(self, request: dict[str, Any]) -> dict[str, Any]:
        """Accept a proposed reorganization: folders created, items moved."""
        from .organize import ProposedFolder, apply_proposal

        user = self._require_user(request)
        at = self._advance(request.get("at"))
        proposal = ProposedFolder.from_payload(request["proposal"])
        moved = apply_proposal(
            self, user["user_id"], request["folder_path"], proposal, at=at,
        )
        return {"moved": moved}

    def _sv_popular_near_trail(self, request: dict[str, Any]) -> dict[str, Any]:
        """Abstract's query: 'popular pages in or near my community's
        recent trail graph related to <topic>' — HITS authorities on the
        trail neighborhood."""
        from ..mining.linkanalysis import popular_near
        from ..server.daemons import link_graph

        user = self._require_user(request)
        owner = user["user_id"]
        path = request["folder_path"]
        window_days = float(request.get("window_days", 30.0))
        k = int(request.get("k", 10))
        hops = int(request.get("hops", 1))

        cache = self.caches.trails if self.caches is not None else None
        token = extra = None
        if cache is not None:
            key = ("popular", owner, path, window_days, k, hops)
            extra = self._trail_extra(owner)
            cached = cache.get(key, extra=extra)
            if cached is not None:
                return cached
            token = cache.token()

        folder_ids = self._user_folder_ids(owner, path)
        since = self._now - window_days * DAY
        include = self._community_pages_for_folder(owner, folder_ids, since=since)
        trail = build_trail_graph(
            self.repo, folder_ids,
            folder_paths=[path], since=since,
            user_id=owner, include_urls=include,
        )
        seeds = set(trail.nodes)
        if not seeds:
            response: dict[str, Any] = {"pages": []}
        else:
            ranked = popular_near(link_graph(self.repo), seeds, k=k, hops=hops)
            response = {
                "pages": [
                    {**self._hit_payload(url, score), "in_trail": url in seeds}
                    for url, score in ranked
                ]
            }
        if cache is not None:
            cache.put(key, response, token=token, extra=extra)
        return response

    # -- health and observability ---------------------------------------------------------

    def _check_storage(self) -> tuple[bool, dict[str, Any]]:
        """Both stores answer a read — fails (via the monitor's exception
        trap) once either store is closed or unreadable."""
        users = len(self.repo.db.table("users"))
        self.repo.kv.get(b"__health_probe__")
        return True, {"users": users, "kv_keys": len(self.repo.kv)}

    def _check_scheduler(self) -> tuple[bool, dict[str, Any]]:
        quarantined = self.scheduler.quarantined()
        return not quarantined, {
            "quarantined": quarantined,
            "wedged": self.scheduler.wedged(),
        }

    def _check_versioning(self) -> tuple[bool, dict[str, Any]]:
        lags = self.repo.versions.lags()
        worst = max(lags.values(), default=0)
        return worst <= self._versioning_lag_threshold, {
            "lags": lags,
            "threshold": self._versioning_lag_threshold,
        }

    def _sv_health(self, request: dict[str, Any]) -> dict[str, Any]:
        """Liveness/readiness plus per-servlet SLO status.

        Unauthenticated by design: load balancers and probes must be able
        to ask "are you well?" without a user row.  SLOs are (re)bound
        lazily from the registry's live instruments so servlets that have
        never seen traffic don't report empty objectives.
        """
        for name, (errors, latency) in self.registry.servlet_instruments().items():
            self.health.slo(name, latency, errors)
        return self.health.report()

    def _sv_metrics_pull(self, request: dict[str, Any]) -> dict[str, Any]:
        """Mergeable raw metrics: bucket counts, not summaries.

        Unauthenticated by design, like ``health``: this is the operator
        pull path the router scatter-gathers into a cluster registry
        (``repro top``, loadgen's server-side delta), and a monitoring
        agent must not need a user row.  ``include_history`` adds the
        sampled time-series ring (``history_limit`` newest samples).
        """
        out: dict[str, Any] = {
            "metrics": self.metrics.raw_snapshot(),
            "history_len": len(self.history),
        }
        if request.get("include_history"):
            limit = int(request.get("history_limit", 32))
            out["history"] = self.history.samples(limit)
        return out

    def _sv_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        """The observability servlet: catalog sizes, daemon and servlet
        counters, per-servlet latency percentiles, per-consumer versioning
        lag (the "loose coherence" headline gauge), and — on request — the
        full metric snapshot, recent trace spans, and the structured log
        ring."""
        self._require_user(request)
        out = {
            "pages": len(self.repo.db.table("pages")),
            "visits": len(self.repo.db.table("visits")),
            "links": len(self.repo.db.table("links")),
            "indexed": self.index.num_docs,
            "crawl_backlog": self.crawler.backlog,
            "daemons": self.scheduler.stats(),
            "servlets": self.registry.stats(),
            "versions": self.repo.versions.consumers(),
            "versioning_lag": self.repo.versions.lags(),
            "latency": self.registry.latency_summary(),
            "latency_raw": self.registry.latency_raw(),
            "cache": self.caches.stats() if self.caches is not None else {},
            "storage": self.repo.storage_stats(),
        }
        if request.get("include_metrics"):
            out["metrics"] = self.metrics.snapshot()
        if request.get("include_spans"):
            out["spans"] = self.tracer.to_payload()
        if request.get("include_logs"):
            out["logs"] = self.logs.to_payload(
                limit=int(request.get("log_limit", 200)),
            )
        return out

    # ---------------------------------------------------------------- network

    def listen(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        idle_timeout: float = 30.0,
        read_timeout: float = 5.0,
    ) -> MemexSocketServer:
        """Start serving the framed wire protocol over TCP.

        Returns the started :class:`MemexSocketServer`; its ``address``
        is the bound ``(host, port)``.  Per-user RC4 keys come from the
        in-process transport (:meth:`HttpTunnelTransport.key_for`), so a
        key set once applies to both the tunnel and the socket.  The
        caller owns the server's lifecycle (``close()`` drains it).
        """
        return MemexSocketServer(
            self.dispatcher,
            host=host,
            port=port,
            workers=workers,
            idle_timeout=idle_timeout,
            read_timeout=read_timeout,
            key_source=self.transport,
            metrics=self.metrics,
            log=self.logs.logger("netserver"),
        )

    # ---------------------------------------------------------------- lifecycle

    def save_state(self) -> dict[str, int]:
        """Persist mined state (per-user classifier models, vocabulary)
        into the repository's model store.  Catalog and index already
        persist through their own write paths when a root was given."""
        saved_models = self.classifier.persist_models()
        self.repo.save_model("vocabulary", self.vectorizer.vocab.to_dict())
        self.repo.save_model("server_clock", {"now": self._now})
        return {"models": saved_models}

    def restore_state(self) -> dict[str, int]:
        """Reload mined state saved by :meth:`save_state`."""
        from ..text.vocabulary import Vocabulary

        vocab_payload = self.repo.load_model("vocabulary")
        if vocab_payload is not None:
            self.vectorizer.vocab = Vocabulary.from_dict(vocab_payload)
        clock = self.repo.load_model("server_clock")
        if clock is not None:
            self._now = max(self._now, float(clock["now"]))
        restored = self.classifier.restore_models()
        return {"models": restored}

    def close(self) -> None:
        self.repo.close()

    def __enter__(self) -> "MemexServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
