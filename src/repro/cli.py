"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Generate a community, replay it, and print a tour of every feature
    (what the VLDB demo session would have shown).
``generate``
    Generate a workload and print its statistics (corpus, graph, events).
``queries``
    Answer the six §1 motivating queries for one simulated user.
``stats``
    Replay a workload, run the daemons to quiescence, and print the
    observability report: every counter, gauge (including per-consumer
    versioning lag), and latency histogram the pipeline recorded.
``experiments``
    Print the experiment index (what each benchmark reproduces).
``serve``
    Replay a workload, then serve the system over TCP (the framed wire
    protocol) with a threaded worker pool, ticking the background
    daemons between requests.  Connect with
    :class:`repro.server.transport.SocketTransport`.
``loadgen``
    Offer a deterministic open-loop schedule (Zipfian million-user
    population, diurnal arrivals, optional flash crowd and chaos plan)
    to a self-contained cluster and report latency/SLO results; see
    docs/OPERATIONS.md.
``top``
    Live plain-text dashboard against a running router or server:
    cluster req/s, exact merged p50/p99 per servlet, shard health and
    restart counts, cache hit rates, storage activity, SLO burn rates.
``trace``
    Reassemble one trace id's cross-shard span tree from the JSONL
    streams the workers and router ship under ``--data-dir``.
``logs``
    Print (or ``--follow``) the merged shipped log streams, optionally
    filtered to one trace id or a minimum severity.
"""

from __future__ import annotations

import argparse
import sys

from .core import MemexSystem, MotivatingQueries
from .core.community import consolidate
from .webgen import build_workload, link_topic_locality


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--users", type=int, default=8)
    parser.add_argument("--days", type=float, default=30.0)
    parser.add_argument("--pages-per-leaf", type=int, default=15)


def _add_storage_args(parser: argparse.ArgumentParser) -> None:
    from .storage import engine_names

    parser.add_argument(
        "--storage-engine", choices=engine_names(), default="btree",
        help="term-store engine (btree: in-memory sorted index; "
             "lsm: memtable + sorted segments with background compaction)",
    )
    parser.add_argument(
        "--codec", choices=("json", "binary"), default="json",
        help="record codec for stored values",
    )


def _storage_kwargs(args: argparse.Namespace) -> dict:
    return {
        "storage_engine": getattr(args, "storage_engine", "btree"),
        "codec": getattr(args, "codec", None),
    }


def _build(args: argparse.Namespace):
    return build_workload(
        seed=args.seed, num_users=args.users, days=args.days,
        pages_per_leaf=args.pages_per_leaf,
    )


def cmd_generate(args: argparse.Namespace) -> int:
    workload = _build(args)
    print(f"taxonomy leaves : {len(workload.root.leaves())}")
    print(f"pages           : {len(workload.corpus)}")
    fronts = sum(1 for p in workload.corpus.pages.values() if p.front_page)
    print(f"  front pages   : {fronts}")
    print(f"links           : {workload.graph.number_of_edges()}")
    print(f"  topic locality: {link_topic_locality(workload.corpus, workload.graph):.2f}")
    print(f"users           : {len(workload.profiles)}")
    print(f"events          : {len(workload.events)}")
    from .server.events import BookmarkEvent, VisitEvent
    visits = sum(1 for e in workload.events if isinstance(e, VisitEvent))
    bms = sum(1 for e in workload.events if isinstance(e, BookmarkEvent))
    print(f"  visits        : {visits}")
    print(f"  bookmarks     : {bms}")
    return 0


def _replayed_system(args: argparse.Namespace):
    workload = _build(args)
    system = MemexSystem.from_workload(workload, **_storage_kwargs(args))
    print(f"replaying {len(workload.events)} events ...", file=sys.stderr)
    system.replay(workload.events)
    return workload, system


def cmd_demo(args: argparse.Namespace) -> int:
    workload, system = _replayed_system(args)
    user = workload.profiles[0]
    applet = system.connect(user.user_id)
    top_topic = max(user.interests.items(), key=lambda kv: kv[1])[0]
    leaf = workload.root.find(top_topic)
    query = " ".join(leaf.seed_terms[:2])

    print(f"\n# search {query!r}")
    for hit in applet.search(query, k=5):
        print(f"  {hit['score']:6.2f}  {hit['url']}")

    print(f"\n# hybrid search {query!r} (lexical + dense + trail fusion)")
    hybrid = applet.search(query, k=5, mode="hybrid")
    for hit in hybrid:
        print(f"  {hit['score']:6.4f}  {hit['url']}")

    if hybrid:
        seed = hybrid[0]["url"]
        print(f"\n# related pages for {seed}")
        for row in applet.related_pages(seed, k=5):
            title = row.get("title") or ""
            print(f"  {row['score']:6.4f}  {row['url']}  {title}")

    folder = user.folder_for_topic(top_topic)
    print(f"\n# trail tab for [{folder}]")
    trail = applet.trail_view(folder)["trail"]
    for node in trail["nodes"][:5]:
        print(f"  score={node['score']:5.2f}  {node['url']}")

    print("\n# community themes")
    report = consolidate(system.server)
    if report is not None:
        print(report.render(max_themes=12))

    print("\n# similar users")
    for row in applet.similar_users(k=3):
        print(f"  {row['user_id']}  {row['similarity']:.2f}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .obs import render_health, render_table, to_json

    workload, system = _replayed_system(args)
    server = system.server
    server.process_background_work()
    # Exercise the read path twice so the report shows servlet latencies
    # and read-cache hit rates, not just ingest-side counters.
    for _ in range(2):
        for profile in workload.profiles[:2]:
            applet = system.connect(profile.user_id)
            top = max(profile.interests.items(), key=lambda kv: kv[1])[0]
            leaf = workload.root.find(top)
            applet.search(" ".join(leaf.seed_terms[:2]), k=5)
            applet.trail_view(profile.folder_for_topic(top))
    health = server.registry.dispatch({"servlet": "health"})
    if args.json:
        print(to_json(
            server.metrics, tracer=server.tracer, health=health,
            logs=server.logs.to_payload() if args.logs else None, indent=2,
        ))
        return 0
    print(render_table(server.metrics, tracer=None, health=health))
    if args.logs:
        print("\nstructured log (JSON lines)")
        print("---------------------------")
        print(server.logs.render_jsonl())
    lags = server.repo.versions.lags()
    print("\nversioning lag (published versions behind producer)")
    print("---------------------------------------------------")
    for name in sorted(lags):
        print(f"{name:<12}  {lags[name]}")
    latency = server.registry.latency_summary()
    if latency:
        print("\nservlet p95 latency (seconds)")
        print("-----------------------------")
        for name in sorted(latency):
            print(f"{name:<24}  {latency[name]['p95']:.6f}")
    if server.caches is not None:
        print("\nread-path caches (version-aware invalidation)")
        print("---------------------------------------------")
        header = ("cache", "entries", "hits", "misses",
                  "evict", "inval", "hit_rate")
        print(f"{header[0]:<10}" + "".join(f"{h:>9}" for h in header[1:]))
        for name, row in sorted(server.caches.stats().items()):
            print(
                f"{name:<10}{row['entries']:>9}{row['hits']:>9}"
                f"{row['misses']:>9}{row['evictions']:>9}"
                f"{row['invalidations']:>9}{row['hit_rate']:>9.2f}"
            )
    storage = server.repo.storage_stats()
    print(f"\nstorage engine ({storage.pop('engine', '?')})")
    print("----------------------------------------------")
    for key in sorted(storage):
        print(f"{key:<20}  {storage[key]}")
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    workload, system = _replayed_system(args)
    profile = next(
        (p for p in workload.profiles if p.user_id == args.user),
        workload.profiles[0],
    )
    top_topic = max(profile.interests.items(), key=lambda kv: kv[1])[0]
    leaf = workload.root.find(top_topic)
    queries = MotivatingQueries(system.server)
    answers = queries.answer_all(
        profile.user_id,
        topical_query=" ".join(leaf.seed_terms[:3]),
        folder_path=profile.folder_for_topic(top_topic),
    )
    for name, answer in answers.items():
        print(f"\n== {name}: {answer.question}")
        for row in answer.results[:3]:
            print(f"   {row}")
    return 0


EXPERIMENTS = [
    ("E1", "benchmarks/test_e1_classifier_accuracy.py",
     "Text-only 40% -> enhanced 80% classification (the §4 claim)"),
    ("E2", "benchmarks/test_e2_folder_learning.py",
     "Figure 1: corrections improve the classifier"),
    ("E3", "benchmarks/test_e3_trail_replay.py",
     "Figure 2: trail-tab replay precision/recall"),
    ("E4", "benchmarks/test_e4_server_pipeline.py",
     "Figure 3: async daemons, versioning, robustness, latency"),
    ("E5", "benchmarks/test_e5_theme_discovery.py",
     "Figure 4: community theme taxonomy, refine/coarsen, fit"),
    ("E6", "benchmarks/test_e6_motivating_queries.py",
     "§1: the six motivating queries"),
    ("E7", "benchmarks/test_e7_clustering.py",
     "§4: HAC / scatter-gather link clustering"),
    ("E8", "benchmarks/test_e8_baselines.py",
     "§5: PowerBookmarks-style and URL-overlap baselines"),
    ("M*", "benchmarks/test_micro_*.py",
     "storage and text substrate microbenchmarks"),
]


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve over TCP: one process by default, a sharded cluster with
    ``--shards N``.  SIGTERM (and Ctrl-C) drains end to end — in-flight
    responses land, workers flush and save, then everything closes."""
    import signal
    import threading
    import time

    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    try:
        if args.shards > 1:
            return _serve_cluster(args, stop)

        workload = _build(args)
        kwargs = _storage_kwargs(args)
        kwargs["sync"] = args.sync
        if args.data_dir:
            kwargs["root"] = args.data_dir
        system = MemexSystem.from_workload(workload, **kwargs)
        print(f"replaying {len(workload.events)} events ...", file=sys.stderr)
        system.replay(workload.events)
        server = system.server
        server.process_background_work()
        net = server.listen(
            host=args.host, port=args.port, workers=args.workers,
        )
        host, port = net.address
        print(f"serving on {host}:{port}  (workers={args.workers})")
        if args.duration is None:
            print("press Ctrl-C to stop (SIGTERM drains)")
        deadline = (
            None if args.duration is None
            else time.monotonic() + args.duration
        )
        try:
            while not stop.is_set() and (
                deadline is None or time.monotonic() < deadline
            ):
                server.scheduler.tick()
                time.sleep(0.1)
        except KeyboardInterrupt:
            pass
        finally:
            net.close(drain=True)
        print("stopped")
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous)


def _serve_cluster(args: argparse.Namespace, stop) -> int:
    """The ``--shards N`` leg of ``serve``: supervisor + router + replay."""
    import time

    from .core.api import corpus_fetcher
    from .core.memex import MemexServer
    from .shard import MemexCluster

    workload = _build(args)
    fetch = corpus_fetcher(workload.corpus)

    def factory(shard_id: int, root: str | None):
        return MemexServer(
            fetch, root=root, sync=args.sync, **_storage_kwargs(args),
        )

    cluster = MemexCluster(
        factory, args.shards,
        data_dir=args.data_dir,
        host=args.host, port=args.port,
        # Client connections are per-user and each parks a router worker
        # thread, so the front pool must cover the simulated population.
        router_workers=max(args.workers, len(workload.profiles) + 2),
    )
    try:
        for profile in workload.profiles:
            cluster.register_user(profile.user_id, community=workload.name)
        print(
            f"replaying {len(workload.events)} events across "
            f"{args.shards} shards ...", file=sys.stderr,
        )
        cluster.replay(workload.events)
        host, port = cluster.address
        layout = args.data_dir or "(in-memory)"
        print(
            f"serving on {host}:{port}  "
            f"(shards={args.shards}, data={layout})"
        )
        if args.duration is None:
            print("press Ctrl-C to stop (SIGTERM drains)")
        deadline = (
            None if args.duration is None
            else time.monotonic() + args.duration
        )
        try:
            while not stop.is_set() and (
                deadline is None or time.monotonic() < deadline
            ):
                time.sleep(0.1)
        except KeyboardInterrupt:
            pass
    finally:
        # Drain end-to-end: router front-end first (in-flight responses
        # land), then each worker drains its own listener and saves.
        cluster.close(drain=True)
    print("stopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load (and optional chaos) against a self-contained
    cluster: build a deterministic schedule from a generated corpus,
    stand up ``--shards N`` real worker processes behind a router, offer
    the schedule at ``--rate`` req/s through a client transport pool,
    and report latency percentiles, error counts, and the server-side
    SLO view.  Exit status 1 if a gate (``--gate-p99``, burn rate)
    fails."""
    import json as json_mod
    import shutil
    import tempfile

    from .client.pool import TransportPool
    from .core.api import corpus_fetcher
    from .core.memex import MemexServer
    from .loadgen import (
        ChaosController,
        OpenLoopRunner,
        build_report,
        build_schedule,
        burn_rate_ok,
        parse_chaos,
        render_report,
    )
    from .shard import MemexCluster
    from .webgen.population import FlashCrowd

    workload = _build(args)
    flash = None
    if args.flash_at is not None:
        topics = sorted({p.topic for p in workload.corpus.pages.values()})
        flash = FlashCrowd(
            at=args.flash_at,
            duration=args.flash_duration,
            multiplier=args.flash_multiplier,
            topic=args.flash_topic if args.flash_topic else topics[0],
        )
    schedule = build_schedule(
        workload.corpus,
        seed=args.load_seed,
        duration=args.duration,
        rate=args.rate,
        population=args.population,
        zipf_exponent=args.zipf,
        diurnal_amplitude=args.amplitude,
        flash=flash,
    )
    print(
        f"schedule: {len(schedule.requests)} requests over {args.duration}s, "
        f"{len(schedule.users)} distinct users, "
        f"digest {schedule.digest()[:12]}",
        file=sys.stderr,
    )

    fetch = corpus_fetcher(workload.corpus)

    def factory(shard_id: int, root: str | None) -> MemexServer:
        return MemexServer(
            fetch, root=root, sync=args.sync, **_storage_kwargs(args),
        )

    scratch = None
    data_dir = args.data_dir
    if data_dir is None:
        # Chaos recovery (and the durability contract it asserts) needs
        # real WALs on disk, so an unset --data-dir gets a scratch dir.
        scratch = tempfile.mkdtemp(prefix="memex-loadgen-")
        data_dir = scratch
    # Every pooled client connection parks one router worker thread.
    pool_sockets = args.pool_size * args.pool_conns
    cluster = MemexCluster(
        factory, args.shards,
        data_dir=data_dir, host=args.host, port=args.port,
        router_workers=pool_sockets + 4,
    )
    chaos = None
    try:
        host, port = cluster.address
        print(f"cluster up on {host}:{port}  (shards={args.shards})",
              file=sys.stderr)
        with TransportPool(
            host, port, size=args.pool_size, max_pooled=args.pool_conns,
        ) as pool:
            runner = OpenLoopRunner(pool, schedule, workers=args.workers)
            # Bracket the run with metrics_pull so the report can carry
            # the server-side delta (work the cluster actually did, not
            # just what clients observed).  Unauthenticated, like health.
            metrics_before = pool.request(
                "__operator__", {"servlet": "metrics_pull"},
            )
            if args.chaos:
                chaos = ChaosController(
                    parse_chaos(args.chaos), cluster=cluster, pool=pool,
                )
                chaos.start()
            result = runner.run()
            if chaos is not None:
                chaos.stop()
                for shard in range(args.shards):
                    cluster.supervisor.wait_until_up(shard)
            health = pool.request(
                schedule.users[0], {"servlet": "health"},
            )
            metrics_after = pool.request(
                "__operator__", {"servlet": "metrics_pull"},
            )
            report = build_report(
                result,
                label=f"shards={args.shards} rate={args.rate}",
                offered_rate=schedule.offered_rate,
                health=health,
                chaos=chaos.fired if chaos is not None else None,
                metrics_before=metrics_before,
                metrics_after=metrics_after,
            )
    finally:
        if chaos is not None:
            chaos.stop()
        cluster.close(drain=True)
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    if args.json:
        print(json_mod.dumps(report, indent=2, default=str))
    else:
        print(render_report(report))

    failed = []
    if args.gate_p99 is not None:
        for kind, row in report["latency"].items():
            if row["p99"] >= args.gate_p99:
                failed.append(
                    f"{kind} p99 {row['p99']:.4f}s >= {args.gate_p99}s"
                )
    # The burn-rate gate applies to steady-state runs only: a chaos
    # plan legitimately burns error budget during recovery windows (the
    # SLO's 300 s short window dwarfs a short run, so even a healed
    # fault reads as fast burn).  Chaos runs are judged on recovery
    # (retries absorbed, bounded client-visible errors) instead.
    if args.chaos is None and not burn_rate_ok(health):
        failed.append("server SLO error budget burning at fast-burn rate")
    for message in failed:
        print(f"GATE FAILED: {message}", file=sys.stderr)
    return 1 if failed else 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    for exp_id, path, desc in EXPERIMENTS:
        print(f"{exp_id:<4} {path:<44} {desc}")
    print("\nRun them all:  pytest benchmarks/ --benchmark-only")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live cluster dashboard over the wire (see repro.obs.top).

    Points at a running router (or single server) started with
    ``repro serve``; both wire calls it makes (``metrics_pull``,
    ``health``) are unauthenticated, so no user registration is needed.
    """
    from .obs.top import run_top
    from .server.transport import SocketTransport

    transport = SocketTransport(args.host, args.port)
    try:
        return run_top(
            lambda payload: transport.request(args.user, payload),
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
        )
    finally:
        transport.close()


def cmd_trace(args: argparse.Namespace) -> int:
    """Reassemble one trace's cross-shard span tree from shipped logs."""
    from .obs.shipping import (
        build_span_tree,
        read_shipped_records,
        render_span_tree,
    )

    records = read_shipped_records(
        args.data_dir, kind="span", trace_id=args.trace_id,
    )
    if not records:
        print(
            f"no spans for trace {args.trace_id} under {args.data_dir}",
            file=sys.stderr,
        )
        return 1
    shards = sorted({r.get("shard", "?") for r in records})
    print(
        f"trace {args.trace_id}: {len(records)} spans "
        f"across {len(shards)} stream(s) ({', '.join(shards)})"
    )
    print(render_span_tree(build_span_tree(records, args.trace_id)))
    return 0


def cmd_logs(args: argparse.Namespace) -> int:
    """Print (or follow) the cluster's merged shipped JSONL streams."""
    import json as json_mod
    import time as time_mod

    from .obs.shipping import read_shipped_records

    kind = None if args.spans else "log"
    last = -1.0
    at_last: set[str] = set()
    while True:
        records = read_shipped_records(
            args.data_dir, kind=kind,
            trace_id=args.trace, level=args.level,
        )
        for record in records:
            ts = float(record.get("wall_ts", 0.0))
            line = json_mod.dumps(record, sort_keys=True, default=str)
            if ts < last or (ts == last and line in at_last):
                continue
            print(line)
            if ts > last:
                last, at_last = ts, {line}
            else:
                at_last.add(line)
        if not args.follow:
            return 0
        time_mod.sleep(args.poll)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memex (VLDB 2000) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a workload and print stats")
    _add_workload_args(p)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("demo", help="replay a community and tour the features")
    _add_workload_args(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("queries", help="answer the six motivating queries")
    _add_workload_args(p)
    p.add_argument("--user", default="user00")
    p.set_defaults(func=cmd_queries)

    p = sub.add_parser(
        "stats", help="replay a workload and print the observability report",
    )
    _add_workload_args(p)
    _add_storage_args(p)
    p.add_argument("--json", action="store_true", help="emit a JSON snapshot")
    p.add_argument(
        "--logs", action="store_true",
        help="include the structured log ring (JSON lines)",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("experiments", help="print the experiment index")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "serve", help="serve a replayed system over TCP (framed protocol)",
    )
    _add_workload_args(p)
    _add_storage_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--workers", type=int, default=4,
                   help="connection worker threads")
    p.add_argument("--shards", type=int, default=1,
                   help="run N shard worker processes behind a router "
                        "(1 = single process)")
    p.add_argument("--data-dir", default=None,
                   help="persistent root; shards use <dir>/shard-NN")
    p.add_argument("--sync", action="store_true",
                   help="fsync before acking writes (the durability "
                        "contract crash recovery guarantees)")
    p.add_argument("--duration", type=float, default=None,
                   help="stop after this many seconds (default: run until ^C)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="offer open-loop load (and optional chaos) to a real cluster",
    )
    _add_workload_args(p)
    _add_storage_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="shard worker processes behind the router")
    p.add_argument("--data-dir", default=None,
                   help="cluster data root (default: a scratch dir)")
    p.add_argument("--sync", action="store_true",
                   help="fsync before acking writes (the durability "
                        "contract chaos runs assert)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="offered requests/second averaged over the run")
    p.add_argument("--duration", type=float, default=30.0,
                   help="offered-load horizon in seconds")
    p.add_argument("--load-seed", type=int, default=7,
                   help="schedule seed (same seed = byte-identical load)")
    p.add_argument("--population", type=int, default=1_000_000,
                   help="Zipfian population size user ids are drawn from")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf activity exponent")
    p.add_argument("--amplitude", type=float, default=0.6,
                   help="diurnal modulation amplitude [0, 1)")
    p.add_argument("--flash-at", type=float, default=None,
                   help="start a flash crowd this many seconds in")
    p.add_argument("--flash-duration", type=float, default=5.0)
    p.add_argument("--flash-multiplier", type=float, default=4.0)
    p.add_argument("--flash-topic", default=None,
                   help="theme the crowd converges on (default: first topic)")
    p.add_argument("--chaos", default=None,
                   help="fault plan: comma-separated action[:shard]@at, "
                        "e.g. 'kill_shard:0@10,drop_connections@15'")
    p.add_argument("--workers", type=int, default=8,
                   help="runner worker threads (in-flight concurrency)")
    p.add_argument("--pool-size", type=int, default=4,
                   help="client socket transports in the pool")
    p.add_argument("--pool-conns", type=int, default=16,
                   help="per-transport LRU connection cap")
    p.add_argument("--gate-p99", type=float, default=None,
                   help="fail (exit 1) if any kind's p99 exceeds this")
    p.add_argument("--json", action="store_true",
                   help="emit the run report as JSON")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "top", help="live cluster dashboard (metrics_pull + health over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="router (or single server) port")
    p.add_argument("--user", default="__operator__",
                   help="hello user id (the servlets are unauthenticated; "
                        "this only names the connection)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N frames (default: run until ^C)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen "
                        "(for piping to a file)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "trace",
        help="reassemble one trace's cross-shard span tree from shipped logs",
    )
    p.add_argument("trace_id", help="32-hex trace id (from a traceparent)")
    p.add_argument("--data-dir", required=True,
                   help="cluster data root (the serve/loadgen --data-dir)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "logs", help="print or follow the cluster's shipped JSONL streams",
    )
    p.add_argument("--data-dir", required=True,
                   help="cluster data root (the serve/loadgen --data-dir)")
    p.add_argument("--follow", action="store_true",
                   help="keep polling for new records (tail -f)")
    p.add_argument("--trace", default=None,
                   help="only records belonging to this trace id")
    p.add_argument("--level", default=None,
                   help="minimum log severity (debug/info/warning/error)")
    p.add_argument("--spans", action="store_true",
                   help="include span records, not just log lines")
    p.add_argument("--poll", type=float, default=1.0,
                   help="follow-mode poll interval in seconds")
    p.set_defaults(func=cmd_logs)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
