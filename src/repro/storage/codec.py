"""Record codecs: how structured records become bytes in the stores.

The paper pushed term-level data into Berkeley DB precisely to escape
text-codec overheads (§3); our original stand-in reintroduced them by
JSON-encoding every record at every call site.  This module makes the
encoding a *seam*: a :class:`Codec` turns JSON-able values (plus
``bytes``) into byte strings and back, and every storage consumer — the
relational WAL, the repository's model blobs, the inverted index's
posting lists — goes through an injected codec instead of hand-rolled
``json.dumps(...).encode("utf-8")`` calls.

Two implementations ship:

``json``
    Byte-identical to the historical format (compact separators, UTF-8).

``binary``
    A length-prefixed, type-tagged binary format.  Values are framed as
    ``0xB1 <version> <tagged value>``; varint lengths keep small records
    small (a ``{doc_id: tf}`` posting entry costs its key bytes plus 2-3
    bytes of framing, versus JSON's quoting and punctuation).

**Versioned magic byte.**  ``0xB1`` is not a legal first byte of UTF-8
encoded JSON text, so :meth:`Codec.decode` on *either* codec sniffs it:
records written as JSON (including every record in a pre-existing store)
remain readable in place after switching a store to the binary codec,
and vice versa.  The version byte after the magic gates future format
revisions.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Protocol, runtime_checkable

from ..errors import CorruptLog

#: First byte of every binary-codec record; never produced by JSON text.
BINARY_MAGIC = 0xB1
#: Current binary format revision.
BINARY_VERSION = 1

_F64 = struct.Struct("<d")

# Type tags for the binary format.
_T_NULL = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03     # zigzag varint (unbounded magnitude)
_T_FLOAT = 0x04   # IEEE-754 double, little-endian
_T_STR = 0x05     # varint byte length + UTF-8
_T_BYTES = 0x06   # varint length + raw bytes
_T_LIST = 0x07    # varint count + tagged items
_T_DICT = 0x08    # varint count + tagged (key, value) pairs


@runtime_checkable
class Codec(Protocol):
    """Encode/decode seam between structured records and store bytes."""

    name: str

    def encode(self, value: Any) -> bytes:
        """Serialize *value* (JSON-able data, plus ``bytes`` under the
        binary codec) to a self-describing byte string."""
        ...

    def decode(self, data: bytes) -> Any:
        """Parse bytes written by *any* codec (magic-byte sniffing)."""
        ...


def _encode_varint(n: int, out: list[bytes]) -> None:
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(data):
            raise CorruptLog("binary record truncated inside a varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _encode_value(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(b"\x00")
    elif value is True:
        out.append(b"\x02")
    elif value is False:
        out.append(b"\x01")
    elif isinstance(value, int):
        # Zigzag for unbounded ints: non-negative -> 2n, negative -> 2|n|-1.
        out.append(b"\x03")
        _encode_varint(value << 1 if value >= 0 else ((-value) << 1) - 1, out)
    elif isinstance(value, float):
        out.append(b"\x04")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"\x05")
        _encode_varint(len(raw), out)
        out.append(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(b"\x06")
        _encode_varint(len(value), out)
        out.append(bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(b"\x07")
        _encode_varint(len(value), out)
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(b"\x08")
        _encode_varint(len(value), out)
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise TypeError(f"codec cannot encode {type(value).__name__}")


def _decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CorruptLog("binary record truncated at a value tag")
    tag = data[pos]
    pos += 1
    if tag == _T_NULL:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT:
        zigzag, pos = _decode_varint(data, pos)
        return (zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1), pos
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise CorruptLog("binary record truncated inside a float")
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag in (_T_STR, _T_BYTES):
        length, pos = _decode_varint(data, pos)
        if pos + length > len(data):
            raise CorruptLog("binary record truncated inside a string")
        raw = data[pos:pos + length]
        return (raw.decode("utf-8") if tag == _T_STR else raw), pos + length
    if tag == _T_LIST:
        count, pos = _decode_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        count, pos = _decode_varint(data, pos)
        table: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_value(data, pos)
            value, pos = _decode_value(data, pos)
            table[key] = value
        return table, pos
    raise CorruptLog(f"binary record has unknown type tag 0x{tag:02x}")


def _sniff_decode(data: bytes) -> Any:
    """Shared decode: binary when the magic byte leads, JSON otherwise."""
    if data[:1] == bytes((BINARY_MAGIC,)):
        if len(data) < 2:
            raise CorruptLog("binary record truncated at the version byte")
        if data[1] > BINARY_VERSION:
            raise CorruptLog(
                f"binary record version {data[1]} is newer than supported "
                f"version {BINARY_VERSION}"
            )
        value, pos = _decode_value(data, 2)
        if pos != len(data):
            raise CorruptLog("binary record has trailing bytes")
        return value
    return json.loads(data.decode("utf-8"))


class JsonCodec:
    """The historical format: compact JSON, UTF-8 bytes."""

    name = "json"

    def encode(self, value: Any) -> bytes:
        return json.dumps(value, separators=(",", ":")).encode("utf-8")

    def decode(self, data: bytes) -> Any:
        return _sniff_decode(data)


class BinaryCodec:
    """Length-prefixed, type-tagged binary records behind a magic byte."""

    name = "binary"

    _PREFIX = bytes((BINARY_MAGIC, BINARY_VERSION))

    def encode(self, value: Any) -> bytes:
        out: list[bytes] = [self._PREFIX]
        _encode_value(value, out)
        return b"".join(out)

    def decode(self, data: bytes) -> Any:
        return _sniff_decode(data)


#: Shared stateless instances — codecs carry no per-store state.
CODECS: dict[str, Codec] = {
    "json": JsonCodec(),
    "binary": BinaryCodec(),
}


def get_codec(codec: str | Codec | None) -> Codec:
    """Resolve a codec by name (``"json"``/``"binary"``), pass instances
    through, and default ``None`` to the JSON codec."""
    if codec is None:
        return CODECS["json"]
    if isinstance(codec, str):
        try:
            return CODECS[codec]
        except KeyError:
            raise ValueError(
                f"unknown codec {codec!r}; choose from {sorted(CODECS)}"
            ) from None
    return codec
