"""Lightweight Berkeley-DB-style key-value store.

The paper stores "fine-grained term-level data" (term statistics, posting
lists) in Berkeley DB because "storing term-level statistics in an RDBMS
would have overwhelming space and time overheads" (§3).  This module is the
stand-in: a persistent ordered key-value store with

* byte-string keys and values,
* ordered cursors and prefix scans (the access pattern posting lists need),
* durability through the shared write-ahead log format,
* background-free compaction triggered by a garbage ratio, and
* an in-memory mode (``path=None``) for tests and simulations.

The design is log-structured: every mutation is appended to the log, and an
in-memory sorted index maps live keys to values.  On open, the log is
replayed to rebuild the index; compaction rewrites the log to contain only
live entries.
"""

from __future__ import annotations

import struct
import threading
from bisect import bisect_left, insort
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..errors import CorruptLog, KeyNotFound, StoreClosed
from ..obs import MetricsRegistry, null_registry
from .codec import Codec, get_codec
from .engine import Namespace, prefix_successor  # noqa: F401 - re-exported
from .wal import WriteAheadLog

_OP_PUT = 0
_OP_DELETE = 1
_REC = struct.Struct("<BI")  # opcode, key length


def _encode(op: int, key: bytes, value: bytes = b"") -> bytes:
    return _REC.pack(op, len(key)) + key + value


def _decode(payload: bytes) -> tuple[int, bytes, bytes]:
    if len(payload) < _REC.size:
        raise CorruptLog("kvstore record shorter than its header")
    op, klen = _REC.unpack_from(payload)
    if _REC.size + klen > len(payload):
        raise CorruptLog("kvstore record key overruns payload")
    key = payload[_REC.size:_REC.size + klen]
    value = payload[_REC.size + klen:]
    return op, key, value


class KVStore:
    """Ordered, persistent key-value store.

    Parameters
    ----------
    path:
        Log file backing the store, or ``None`` for a purely in-memory
        store.
    compact_garbage_ratio:
        When the fraction of dead log records exceeds this, :meth:`put`
        and :meth:`delete` trigger a compaction.  Set above 1.0 to disable
        automatic compaction.
    sync:
        Passed through to the write-ahead log.
    codec:
        Record codec consumers of this store serialize through (the store
        itself moves opaque bytes); exposed as :attr:`codec` per the
        :class:`~repro.storage.engine.StorageEngine` protocol.
    """

    #: Factory name (see :mod:`repro.storage.engine`): the in-memory
    #: sorted-index engine, historically the Berkeley-DB/B-tree stand-in.
    engine_name = "btree"

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        compact_garbage_ratio: float = 0.5,
        sync: bool = False,
        metrics: MetricsRegistry | None = None,
        codec: str | Codec | None = None,
    ) -> None:
        self.codec = get_codec(codec)
        self._data: dict[bytes, bytes] = {}
        self._keys: list[bytes] = []          # sorted view of _data's keys
        self._log: WriteAheadLog | None = None
        self._log_records = 0                  # total records in the log
        self._closed = False
        # Single-writer lock: keeps _data and _keys mutually consistent
        # and serializes mutations with compaction.  Reentrant because
        # put/delete may trigger compact() while holding it.  Point reads
        # are single dict ops (GIL-atomic) and stay lock-free; scans
        # snapshot the key range under the lock, then iterate outside it.
        self._kv_lock = threading.RLock()
        self.compact_garbage_ratio = compact_garbage_ratio
        m = metrics if metrics is not None else null_registry()
        # Hot-path counts are plain ints pulled by the registry at read
        # time (zero per-event instrument cost).
        self._n_puts = 0
        self._n_deletes = 0
        self._n_compactions = 0
        m.counter_func("storage.kvstore.puts", lambda: self._n_puts)
        m.counter_func("storage.kvstore.deletes", lambda: self._n_deletes)
        m.counter_func("storage.kvstore.compactions", lambda: self._n_compactions)
        if path is not None:
            self._log = WriteAheadLog(path, sync=sync, metrics=m)
            self._recover()

    # -- lifecycle ------------------------------------------------------------

    def _recover(self) -> None:
        assert self._log is not None
        for payload in self._log.replay():
            op, key, value = _decode(payload)
            if op == _OP_PUT:
                self._data[key] = value
            else:
                self._data.pop(key, None)
            self._log_records += 1
        self._keys = sorted(self._data)

    def close(self) -> None:
        with self._kv_lock:
            if self._closed:
                return
            if self._log is not None:
                self._log.close()
            self._closed = True

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("kvstore is closed")

    # -- mutation ---------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key*."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("kvstore keys and values must be bytes")
        with self._kv_lock:
            self._check_open()
            fresh = key not in self._data
            self._data[key] = value
            self._n_puts += 1
            if fresh:
                insort(self._keys, key)
            if self._log is not None:
                self._log.append(_encode(_OP_PUT, key, value))
                self._log_records += 1
                self._maybe_compact()

    def put_many(self, items: Iterable[tuple[bytes, bytes]]) -> int:
        """Insert or overwrite many keys with one group-committed log
        append (one buffered write, at most one fsync); returns the count.

        Later occurrences of a duplicate key win, matching sequential
        :meth:`put` semantics.
        """
        with self._kv_lock:
            self._check_open()
            records: list[bytes] = []
            for key, value in items:
                if not isinstance(key, bytes) or not isinstance(value, bytes):
                    raise TypeError("kvstore keys and values must be bytes")
                if key not in self._data:
                    insort(self._keys, key)
                self._data[key] = value
                self._n_puts += 1
                records.append(_encode(_OP_PUT, key, value))
            if self._log is not None and records:
                self._log.append_many(records)
                self._log_records += len(records)
                self._maybe_compact()
            return len(records)

    def delete(self, key: bytes) -> None:
        """Remove *key*; raises :class:`KeyNotFound` if absent."""
        with self._kv_lock:
            self._check_open()
            if key not in self._data:
                raise KeyNotFound(repr(key))
            del self._data[key]
            self._n_deletes += 1
            i = bisect_left(self._keys, key)
            del self._keys[i]
            if self._log is not None:
                self._log.append(_encode(_OP_DELETE, key))
                self._log_records += 1
                self._maybe_compact()

    def discard(self, key: bytes) -> bool:
        """Remove *key* if present; returns whether it was."""
        try:
            self.delete(key)
            return True
        except KeyNotFound:
            return False

    # -- lookup -------------------------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        """Return the value for *key*, or *default* when absent."""
        self._check_open()
        return self._data.get(key, default)

    def __getitem__(self, key: bytes) -> bytes:
        self._check_open()
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFound(repr(key)) from None

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __contains__(self, key: bytes) -> bool:
        self._check_open()
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    # -- scans ---------------------------------------------------------------------

    def cursor(
        self,
        start: bytes | None = None,
        end: bytes | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in key order over ``[start, end)``.

        The iteration works over a snapshot of the key set taken at call
        time, so mutating the store during iteration is safe.
        """
        with self._kv_lock:
            self._check_open()
            lo = 0 if start is None else bisect_left(self._keys, start)
            keys = self._keys[lo:]
            if end is not None:
                hi = bisect_left(keys, end)
                keys = keys[:hi]
        # Iterate outside the lock: the snapshot is ours, and per-key
        # value reads are single dict lookups.
        for key in keys:
            value = self._data.get(key)
            if value is not None:
                yield key, value

    def prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all pairs whose key starts with *prefix*, in key order."""
        if not prefix:
            yield from self.cursor()
            return
        end = prefix_successor(prefix)
        for key, value in self.cursor(start=prefix, end=end):
            if not key.startswith(prefix):
                break
            yield key, value

    #: Protocol-surface alias (``StorageEngine.scan_prefix``).
    scan_prefix = prefix

    def keys(self) -> list[bytes]:
        """All live keys in sorted order (copy)."""
        with self._kv_lock:
            self._check_open()
            return list(self._keys)

    # -- maintenance -----------------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._log is None or self._log_records == 0:
            return
        dead = self._log_records - len(self._data)
        if dead <= 16:
            return
        if dead / self._log_records > self.compact_garbage_ratio:
            self.compact()

    def compact(self) -> None:
        """Rewrite the log to contain exactly the live entries."""
        with self._kv_lock:
            self._check_open()
            if self._log is None:
                return
            self._log.rewrite(
                _encode(_OP_PUT, key, self._data[key]) for key in self._keys
            )
            self._log_records = len(self._data)
            self._n_compactions += 1

    def stats(self) -> dict[str, int]:
        """Operational counters: live keys, log records, log bytes."""
        with self._kv_lock:
            self._check_open()
            return {
                "engine": self.engine_name,
                "live_keys": len(self._data),
                "log_records": self._log_records,
                "log_bytes": self._log.size_bytes() if self._log is not None else 0,
            }
