"""LSM-tree storage engine: memtable, sorted segments, background compaction.

The btree engine (:mod:`.kvstore`) replays one log into a fully in-memory
sorted index — fine per community, but ingest pays an ordered insert into
an ever-growing key list and reopen pays a full-history replay.  This
engine is the scale path the roadmap asks for:

* **Memtable** — recent writes live in a plain dict (O(1) per put) backed
  by the shared write-ahead log for durability; an acked write survives
  any crash.  Tombstones (``value=None``) record deletions.
* **Segments** — when the memtable exceeds ``memtable_bytes`` it is
  sorted once and written as an immutable segment file carrying a sparse
  index block (one entry every ``sparse_every`` records) and a bloom
  filter, then the WAL is truncated.  Point reads check the memtable,
  then segments newest-first; the bloom filter skips segments that
  cannot contain the key, and the sparse index bounds the scan to one
  block.  Ordered cursors and prefix scans merge the memtable with every
  segment, newest-wins per key.
* **Compaction** — merging every segment into one, dropping tombstones
  and shadowed versions.  It runs on a scheduler daemon
  (:class:`LSMMaintenanceDaemon`) under the existing quarantine/parole
  supervision, and does the merge *outside* the engine lock: readers
  keep serving from the immutable old segments and the swap is a list
  assignment.

Crash safety is manifest-based.  ``MANIFEST`` lists the live segment
files in logical order (oldest first) and is replaced atomically
(tmp + fsync + rename); segment files are written to a ``.tmp`` sibling
and renamed in before the manifest mentions them.  Every step of flush
and compaction therefore leaves the directory in a state recovery
understands: unlisted segment files are deleted at open, and the WAL is
only truncated *after* the manifest adopts the flushed segment, so a
crash between the two merely replays records the segment already holds
(idempotent).  ``benchmarks/test_bench_storage.py`` and
``tests/test_storage_recovery.py`` SIGKILL mid-flush and mid-compaction
to hold this to "zero acked writes lost".

Retired segments (replaced by compaction) are unlinked immediately but
their descriptors stay open in a bounded graveyard, so an in-flight
reader that snapshotted them keeps a valid fd; the oldest are closed
once the graveyard exceeds its cap.
"""

from __future__ import annotations

import heapq
import os
import struct
import threading
import zlib
from bisect import bisect_right
from collections.abc import Callable, Iterable, Iterator
from pathlib import Path

from ..errors import CorruptLog, KeyNotFound, StoreClosed
from ..obs import MetricsRegistry, null_registry
from .codec import Codec, get_codec
from .engine import Namespace, prefix_successor  # noqa: F401 - re-exported
from .kvstore import _OP_DELETE, _OP_PUT, _decode, _encode
from .wal import WriteAheadLog

SEGMENT_MAGIC = b"MSG1"
_SEG_REC = struct.Struct("<BII")       # flags, key length, value length
_IDX_ENT = struct.Struct("<IQ")        # key length, file offset
_BLOOM_HEAD = struct.Struct("<IH")     # bit count, hash count
_FOOTER = struct.Struct("<QQQ4s")      # index offset, bloom offset, records, magic

_TOMBSTONE = 0x01                      # record flag: key deleted at this level

#: Readers that snapshotted a segment keep it usable after compaction
#: retires it; beyond this many retired segments the oldest are closed.
RETIRED_SEGMENT_CAP = 32

_ABSENT = object()

# Test-only crash injection: the recovery suite installs a hook that
# SIGKILLs the process at a named point inside flush/compaction.
_crash_hook: Callable[[str], None] | None = None


def set_crash_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or clear) the crash-injection hook (tests only)."""
    global _crash_hook
    _crash_hook = hook


def _crashpoint(name: str) -> None:
    if _crash_hook is not None:
        _crash_hook(name)


class BloomFilter:
    """Fixed-size bloom filter over byte keys, double-hashed.

    Hashes derive from ``crc32`` and ``adler32`` (both C-speed and
    deterministic across processes — segment files must verify under any
    ``PYTHONHASHSEED``), combined as ``h1 + i*h2`` per probe.
    """

    __slots__ = ("nbits", "nhashes", "bits")

    def __init__(self, nbits: int, nhashes: int, bits: bytearray) -> None:
        self.nbits = nbits
        self.nhashes = nhashes
        self.bits = bits

    @classmethod
    def for_count(cls, n: int, *, bits_per_key: int = 10) -> "BloomFilter":
        nbits = max(64, n * bits_per_key)
        nhashes = max(1, min(16, round(bits_per_key * 0.69)))  # k ≈ m/n · ln2
        return cls(nbits, nhashes, bytearray((nbits + 7) // 8))

    def _probes(self, key: bytes) -> Iterator[int]:
        h1 = zlib.crc32(key)
        h2 = zlib.adler32(key) | 1
        for i in range(self.nhashes):
            yield (h1 + i * h2) % self.nbits

    def add(self, key: bytes) -> None:
        for bit in self._probes(key):
            self.bits[bit >> 3] |= 1 << (bit & 7)

    def __contains__(self, key: bytes) -> bool:
        for bit in self._probes(key):
            if not self.bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def encode(self) -> bytes:
        return _BLOOM_HEAD.pack(self.nbits, self.nhashes) + bytes(self.bits)

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        nbits, nhashes = _BLOOM_HEAD.unpack_from(data)
        bits = bytearray(data[_BLOOM_HEAD.size:])
        if len(bits) != (nbits + 7) // 8:
            raise CorruptLog("bloom block length disagrees with its header")
        return cls(nbits, nhashes, bits)


def _parse_records(chunk: bytes) -> Iterator[tuple[int, bytes, bytes | None]]:
    """Yield ``(end_offset, key, value_or_None)`` for each complete record
    in *chunk*; a partial trailing record is left unconsumed."""
    pos = 0
    end = len(chunk)
    while pos + _SEG_REC.size <= end:
        flags, klen, vlen = _SEG_REC.unpack_from(chunk, pos)
        body = pos + _SEG_REC.size
        if body + klen + vlen > end:
            break
        key = chunk[body:body + klen]
        value = None if flags & _TOMBSTONE else chunk[body + klen:body + klen + vlen]
        pos = body + klen + vlen
        yield pos, key, value


class Segment:
    """One immutable sorted segment file (read side).

    Point reads and range iteration use ``os.pread`` on a shared
    descriptor, so no seek state exists and concurrent readers need no
    lock.  ``value=None`` in iteration results means a tombstone.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self.fd = os.open(path, os.O_RDONLY)
        self.retired = False
        try:
            size = os.fstat(self.fd).st_size
            if size < len(SEGMENT_MAGIC) + _FOOTER.size:
                raise CorruptLog(f"{path}: segment shorter than its framing")
            footer = os.pread(self.fd, _FOOTER.size, size - _FOOTER.size)
            index_off, bloom_off, self.count, magic = _FOOTER.unpack(footer)
            head = os.pread(self.fd, len(SEGMENT_MAGIC), 0)
            if magic != SEGMENT_MAGIC or head != SEGMENT_MAGIC:
                raise CorruptLog(f"{path}: bad segment magic")
            if not (
                len(SEGMENT_MAGIC) <= index_off <= bloom_off
                <= size - _FOOTER.size
            ):
                raise CorruptLog(f"{path}: segment block offsets out of order")
            self.data_end = index_off
            raw = os.pread(self.fd, bloom_off - index_off, index_off)
            self.index_keys, self.index_offs = self._parse_index(raw, path)
            raw = os.pread(self.fd, size - _FOOTER.size - bloom_off, bloom_off)
            self.bloom = BloomFilter.decode(raw)
        except Exception:
            os.close(self.fd)
            raise

    @staticmethod
    def _parse_index(raw: bytes, path: Path) -> tuple[list[bytes], list[int]]:
        keys: list[bytes] = []
        offs: list[int] = []
        pos = 0
        while pos < len(raw):
            if pos + _IDX_ENT.size > len(raw):
                raise CorruptLog(f"{path}: truncated sparse index")
            klen, off = _IDX_ENT.unpack_from(raw, pos)
            pos += _IDX_ENT.size
            keys.append(raw[pos:pos + klen])
            offs.append(off)
            pos += klen
        return keys, offs

    # -- construction -------------------------------------------------------

    @staticmethod
    def write(
        path: Path,
        items: Iterable[tuple[bytes, bytes | None]],
        *,
        sparse_every: int = 16,
        bloom_bits_per_key: int = 10,
    ) -> Path:
        """Write *items* (key-sorted, ``None`` = tombstone) as a segment.

        Writes to a ``.tmp`` sibling, fsyncs, then renames into place, so
        a crash mid-write never leaves a half-segment under the final
        name (stray ``.tmp`` files are swept at store open).
        """
        tmp = path.with_suffix(path.suffix + ".tmp")
        keys: list[bytes] = []
        index: list[tuple[bytes, int]] = []
        with open(tmp, "wb") as fh:
            fh.write(SEGMENT_MAGIC)
            offset = len(SEGMENT_MAGIC)
            for i, (key, value) in enumerate(items):
                if i % sparse_every == 0:
                    index.append((key, offset))
                keys.append(key)
                flags = _TOMBSTONE if value is None else 0
                record = _SEG_REC.pack(flags, len(key), len(value or b""))
                fh.write(record + key + (value or b""))
                offset += len(record) + len(key) + len(value or b"")
            index_off = offset
            for key, off in index:
                fh.write(_IDX_ENT.pack(len(key), off) + key)
                offset += _IDX_ENT.size + len(key)
            bloom = BloomFilter.for_count(
                len(keys), bits_per_key=bloom_bits_per_key,
            )
            for key in keys:
                bloom.add(key)
            fh.write(bloom.encode())
            fh.write(_FOOTER.pack(index_off, offset, len(keys), SEGMENT_MAGIC))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    # -- reads --------------------------------------------------------------

    def _block_bounds(self, key: bytes) -> tuple[int, int] | None:
        """The ``[start, end)`` file span of the block that could hold *key*."""
        i = bisect_right(self.index_keys, key) - 1
        if i < 0:
            return None
        start = self.index_offs[i]
        end = self.index_offs[i + 1] if i + 1 < len(self.index_offs) else self.data_end
        return start, end

    def get(self, key: bytes) -> tuple[bytes | None, bool] | None:
        """``(value, is_tombstone)`` when this segment has *key*, else None.

        The caller consults the bloom filter first; this does the sparse
        index seek and the single-block scan.
        """
        bounds = self._block_bounds(key)
        if bounds is None:
            return None
        start, end = bounds
        chunk = os.pread(self.fd, end - start, start)
        for _, rkey, value in _parse_records(chunk):
            if rkey == key:
                return value, value is None
            if rkey > key:
                return None
        return None

    def iter_range(
        self, start: bytes | None = None, end: bytes | None = None,
        *, chunk_bytes: int = 1 << 16,
    ) -> Iterator[tuple[bytes, bytes | None]]:
        """Yield ``(key, value_or_None)`` in order over ``[start, end)``."""
        if start is None:
            offset = len(SEGMENT_MAGIC)
        else:
            bounds = self._block_bounds(start)
            offset = bounds[0] if bounds is not None else len(SEGMENT_MAGIC)
        carry = b""
        while offset < self.data_end:
            chunk = os.pread(
                self.fd, min(chunk_bytes, self.data_end - offset), offset,
            )
            if not chunk:
                break
            offset += len(chunk)
            data = carry + chunk
            consumed = 0
            for consumed, key, value in _parse_records(data):
                if end is not None and key >= end:
                    return
                if start is None or key >= start:
                    yield key, value
            carry = data[consumed:]
        # A well-formed segment never leaves a partial record before
        # data_end; anything left in carry is corruption.
        if carry:
            raise CorruptLog(f"{self.path}: trailing partial record")

    def close(self) -> None:
        if self.fd >= 0:
            os.close(self.fd)
            self.fd = -1


class LSMStore:
    """Ordered, persistent key-value store with LSM layout.

    Parameters
    ----------
    path:
        Directory the store lives in (created if missing), or ``None``
        for a purely in-memory store (memtable only, no WAL/segments).
    memtable_bytes:
        Flush threshold: once buffered keys+values exceed this, the
        memtable becomes a segment.
    max_segments:
        :meth:`run_maintenance` compacts once more than this many
        segments exist.
    sparse_every / bloom_bits_per_key:
        Segment tuning: sparse-index granularity and bloom density.
    sync:
        fsync the WAL on every commit (ack == durable).
    codec:
        Record codec exposed to consumers (see :mod:`.codec`).
    """

    engine_name = "lsm"

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        memtable_bytes: int = 4 * 1024 * 1024,
        max_segments: int = 8,
        sparse_every: int = 16,
        bloom_bits_per_key: int = 10,
        sync: bool = False,
        metrics: MetricsRegistry | None = None,
        codec: str | Codec | None = None,
    ) -> None:
        self.codec = get_codec(codec)
        self.memtable_bytes = memtable_bytes
        self.max_segments = max_segments
        self.sparse_every = sparse_every
        self.bloom_bits_per_key = bloom_bits_per_key
        self._dir = Path(path) if path is not None else None
        self._mem: dict[bytes, bytes | None] = {}
        self._mem_bytes = 0
        self._segments: list[Segment] = []
        self._retired: list[Segment] = []
        self._wal: WriteAheadLog | None = None
        self._next_seq = 1
        self._count = 0
        self._closed = False
        self._compacting = False
        # Engine lock ("kvstore" rank in repro.locks.LOCK_ORDER — the
        # storage-engine level — above the WAL lock it nests over).
        # Mutations, memtable/segment-list snapshots, and the flush /
        # compaction swap serialize here; segment file reads and the
        # compaction merge itself run outside it on immutable state.
        self._lsm_lock = threading.RLock()
        m = metrics if metrics is not None else null_registry()
        self._clock = getattr(m, "clock", None)
        self._n_puts = 0
        self._n_deletes = 0
        self._n_flushes = 0
        self._n_compactions = 0
        self._compaction_seconds = 0.0
        self._bloom_checks = 0
        self._bloom_skips = 0
        m.counter_func("storage.lsm.puts", lambda: self._n_puts)
        m.counter_func("storage.lsm.deletes", lambda: self._n_deletes)
        m.counter_func("storage.lsm.flushes", lambda: self._n_flushes)
        m.counter_func("storage.lsm.compactions", lambda: self._n_compactions)
        m.counter_func("storage.lsm.bloom_checks", lambda: self._bloom_checks)
        m.counter_func("storage.lsm.bloom_skips", lambda: self._bloom_skips)
        m.gauge_func("storage.lsm.memtable_bytes", lambda: self._mem_bytes)
        m.gauge_func("storage.lsm.segments", lambda: len(self._segments))
        m.gauge_func("storage.lsm.live_keys", lambda: self._count)
        self._m_compaction_latency = m.histogram("storage.lsm.compaction_seconds")
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._open_dir(sync=sync, metrics=m)

    # -- lifecycle ----------------------------------------------------------

    def _open_dir(self, *, sync: bool, metrics) -> None:
        assert self._dir is not None
        manifest = self._read_manifest()
        listed = set(manifest)
        for stray in sorted(self._dir.glob("seg-*")):
            if stray.name not in listed:
                stray.unlink()  # unadopted flush/compaction leftovers
        for name in manifest:
            seg = Segment(self._dir / name)
            self._segments.append(seg)
            seq = int(name.split("-")[1].split(".")[0])
            self._next_seq = max(self._next_seq, seq + 1)
        self._wal = WriteAheadLog(
            self._dir / "memtable.wal", sync=sync, metrics=metrics,
        )
        for payload in self._wal.replay():
            op, key, value = _decode(payload)
            if op == _OP_PUT:
                self._mem[key] = value
                self._mem_bytes += len(key) + len(value)
            else:
                self._mem[key] = None
                self._mem_bytes += len(key)
        self._count = sum(1 for _ in self.cursor())

    def _read_manifest(self) -> list[str]:
        assert self._dir is not None
        path = self._dir / "MANIFEST"
        if not path.exists():
            return []
        return [line for line in path.read_text().splitlines() if line]

    def _write_manifest(self) -> None:
        assert self._dir is not None
        tmp = self._dir / "MANIFEST.tmp"
        with open(tmp, "w") as fh:
            fh.write("".join(seg.path.name + "\n" for seg in self._segments))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._dir / "MANIFEST")

    def close(self) -> None:
        with self._lsm_lock:
            if self._closed:
                return
            if self._wal is not None:
                self._wal.close()
            for seg in self._segments + self._retired:
                seg.close()
            self._closed = True

    def __enter__(self) -> "LSMStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("lsm store is closed")

    # -- mutation -----------------------------------------------------------

    def _segment_value(self, key: bytes, segments: list[Segment]):
        """Newest segment verdict for *key*: value bytes, ``None`` for a
        tombstone, or ``_ABSENT``.  Bloom-gated per segment."""
        for seg in reversed(segments):
            self._bloom_checks += 1
            if key not in seg.bloom:
                self._bloom_skips += 1
                continue
            found = seg.get(key)
            if found is not None:
                value, tombstone = found
                return None if tombstone else value
        return _ABSENT

    def _is_fresh(self, key: bytes) -> bool:
        """Whether *key* is currently absent (memtable-first, then segments)."""
        prev = self._mem.get(key, _ABSENT)
        if prev is not _ABSENT:
            return prev is None
        return self._segment_value(key, self._segments) in (None, _ABSENT)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key*."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("lsm keys and values must be bytes")
        with self._lsm_lock:
            self._check_open()
            fresh = self._is_fresh(key)
            if self._wal is not None:
                self._wal.append(_encode(_OP_PUT, key, value))
            self._mem[key] = value
            self._mem_bytes += len(key) + len(value)
            self._n_puts += 1
            if fresh:
                self._count += 1
            self._maybe_flush()

    def put_many(self, items: Iterable[tuple[bytes, bytes]]) -> int:
        """Insert or overwrite many keys with one group-committed WAL
        append (one buffered write, at most one fsync); returns the count.

        Later occurrences of a duplicate key win, matching sequential
        :meth:`put` semantics.
        """
        with self._lsm_lock:
            self._check_open()
            pairs: list[tuple[bytes, bytes]] = []
            for key, value in items:
                if not isinstance(key, bytes) or not isinstance(value, bytes):
                    raise TypeError("lsm keys and values must be bytes")
                pairs.append((key, value))
            if self._wal is not None and pairs:
                self._wal.append_many(
                    _encode(_OP_PUT, key, value) for key, value in pairs
                )
            for key, value in pairs:
                if self._is_fresh(key):
                    self._count += 1
                self._mem[key] = value
                self._mem_bytes += len(key) + len(value)
            self._n_puts += len(pairs)
            if pairs:
                self._maybe_flush()
            return len(pairs)

    def delete(self, key: bytes) -> None:
        """Remove *key*; raises :class:`KeyNotFound` if absent."""
        with self._lsm_lock:
            self._check_open()
            if self._is_fresh(key):
                raise KeyNotFound(repr(key))
            if self._wal is not None:
                self._wal.append(_encode(_OP_DELETE, key))
            if self._dir is None:
                # No segments can shadow: drop the key outright instead
                # of accumulating tombstones forever.
                self._mem.pop(key, None)
            else:
                self._mem[key] = None
                self._mem_bytes += len(key)
            self._count -= 1
            self._n_deletes += 1
            self._maybe_flush()

    def discard(self, key: bytes) -> bool:
        """Remove *key* if present; returns whether it was."""
        try:
            self.delete(key)
            return True
        except KeyNotFound:
            return False

    # -- lookup -------------------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        """Return the value for *key*, or *default* when absent."""
        with self._lsm_lock:
            self._check_open()
            value = self._mem.get(key, _ABSENT)
            if value is not _ABSENT:
                return default if value is None else value
            segments = list(self._segments)
        # Segment files are immutable; reads run outside the lock.
        found = self._segment_value(key, segments)
        if found is _ABSENT or found is None:
            return default
        return found

    def __getitem__(self, key: bytes) -> bytes:
        value = self.get(key, _ABSENT)  # type: ignore[arg-type]
        if value is _ABSENT:
            raise KeyNotFound(repr(key))
        return value  # type: ignore[return-value]

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key, _ABSENT) is not _ABSENT  # type: ignore[arg-type]

    def __len__(self) -> int:
        return self._count

    # -- scans --------------------------------------------------------------

    def cursor(
        self,
        start: bytes | None = None,
        end: bytes | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in key order over ``[start, end)``.

        Iteration merges a snapshot of the memtable with the immutable
        segments present at call time, newest-wins per key; mutating the
        store during iteration is safe.
        """
        with self._lsm_lock:
            self._check_open()
            mem = [
                (key, self._mem[key])
                for key in sorted(self._mem)
                if (start is None or key >= start)
                and (end is None or key < end)
            ]
            segments = list(self._segments)
        sources: list[Iterator[tuple[bytes, bytes | None]]] = [iter(mem)]
        for seg in reversed(segments):
            sources.append(seg.iter_range(start, end))
        yield from _merge_newest_wins(sources)

    def prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all pairs whose key starts with *prefix*, in key order."""
        if not prefix:
            yield from self.cursor()
            return
        end = prefix_successor(prefix)
        for key, value in self.cursor(start=prefix, end=end):
            if not key.startswith(prefix):
                break
            yield key, value

    #: Protocol-surface alias (``StorageEngine.scan_prefix``).
    scan_prefix = prefix

    def keys(self) -> list[bytes]:
        """All live keys in sorted order."""
        return [key for key, _ in self.cursor()]

    # -- maintenance --------------------------------------------------------

    def _maybe_flush(self) -> None:
        if self._dir is not None and self._mem_bytes >= self.memtable_bytes:
            self._flush_locked()

    def flush(self) -> int:
        """Freeze the memtable into a new segment; returns records written."""
        with self._lsm_lock:
            self._check_open()
            return self._flush_locked()

    def _flush_locked(self) -> int:
        if self._dir is None or not self._mem:
            return 0
        items = sorted(self._mem.items())
        path = self._dir / f"seg-{self._next_seq:08d}.seg"
        self._next_seq += 1
        Segment.write(
            path, items,
            sparse_every=self.sparse_every,
            bloom_bits_per_key=self.bloom_bits_per_key,
        )
        _crashpoint("flush:post-segment")
        self._segments.append(Segment(path))
        self._write_manifest()
        _crashpoint("flush:post-manifest")
        assert self._wal is not None
        self._wal.rewrite([])
        self._mem.clear()
        self._mem_bytes = 0
        self._n_flushes += 1
        return len(items)

    def compact(self) -> None:
        """Flush, then merge every segment into one, dropping tombstones.

        The merge runs outside the engine lock over the immutable input
        segments, so concurrent reads and writes proceed; only the final
        list swap and manifest write re-enter the lock.  Segments flushed
        *during* the merge stay layered above the merged output.
        """
        with self._lsm_lock:
            self._check_open()
            self._flush_locked()
            if self._compacting or len(self._segments) <= 1:
                return
            self._compacting = True
            snapshot = list(self._segments)
            seq = self._next_seq
            self._next_seq += 1
        start_time = self._clock() if self._clock is not None else None
        try:
            merged = _merge_newest_wins(
                [seg.iter_range() for seg in reversed(snapshot)],
                keep_tombstones=False,
            )
            assert self._dir is not None
            path = self._dir / f"seg-{seq:08d}.seg"
            Segment.write(
                path, merged,
                sparse_every=self.sparse_every,
                bloom_bits_per_key=self.bloom_bits_per_key,
            )
            _crashpoint("compact:post-segment")
            new_seg = Segment(path)
            with self._lsm_lock:
                if self._closed:
                    new_seg.close()
                    return
                # Replace exactly the merged prefix; segments flushed
                # while merging stay on top (they are newer).
                self._segments = [new_seg] + self._segments[len(snapshot):]
                self._write_manifest()
                _crashpoint("compact:post-manifest")
                for seg in snapshot:
                    seg.retired = True
                    seg.path.unlink(missing_ok=True)
                self._retired.extend(snapshot)
                while len(self._retired) > RETIRED_SEGMENT_CAP:
                    self._retired.pop(0).close()
                self._n_compactions += 1
        finally:
            with self._lsm_lock:
                self._compacting = False
            if start_time is not None:
                elapsed = self._clock() - start_time
                self._compaction_seconds += elapsed
                self._m_compaction_latency.observe(elapsed)

    def run_maintenance(self) -> int:
        """One bounded background step: flush an oversized memtable,
        compact an oversized segment stack.  Returns work units done
        (the scheduler-daemon contract)."""
        done = 0
        with self._lsm_lock:
            self._check_open()
            if self._dir is not None and self._mem_bytes >= self.memtable_bytes:
                self._flush_locked()
                done += 1
        if len(self._segments) > self.max_segments:
            self.compact()
            done += 1
        return done

    def stats(self) -> dict:
        """Operational counters (superset of the protocol's stats surface)."""
        with self._lsm_lock:
            self._check_open()
            checks = self._bloom_checks
            return {
                "engine": self.engine_name,
                "live_keys": self._count,
                "memtable_keys": len(self._mem),
                "memtable_bytes": self._mem_bytes,
                "segments": len(self._segments),
                "segment_records": sum(s.count for s in self._segments),
                "retired_segments": len(self._retired),
                "flushes": self._n_flushes,
                "compactions": self._n_compactions,
                "compaction_seconds": round(self._compaction_seconds, 6),
                "bloom_checks": checks,
                "bloom_skips": self._bloom_skips,
                "bloom_hit_rate": (
                    round(self._bloom_skips / checks, 4) if checks else 0.0
                ),
                "log_bytes": (
                    self._wal.size_bytes() if self._wal is not None else 0
                ),
            }


def _merge_newest_wins(
    sources: list[Iterator[tuple[bytes, bytes | None]]],
    *,
    keep_tombstones: bool = False,
) -> Iterator[tuple[bytes, bytes]]:
    """K-way merge of key-ordered iterators; earlier sources win a key.

    Tombstones (``value=None``) suppress the key entirely unless
    *keep_tombstones* (compactions that must go on shadowing lower,
    uncompacted levels would pass True; the full-stack compaction this
    engine does drops them).
    """
    heap: list[tuple[bytes, int, bytes | None]] = []
    iters = [iter(src) for src in sources]
    for prio, it in enumerate(iters):
        for key, value in it:
            heapq.heappush(heap, (key, prio, value))
            break
    last_key: bytes | None = None
    while heap:
        key, prio, value = heapq.heappop(heap)
        for nkey, nvalue in iters[prio]:
            heapq.heappush(heap, (nkey, prio, nvalue))
            break
        if key == last_key:
            continue
        last_key = key
        if value is None:
            if keep_tombstones:
                yield key, None  # type: ignore[misc]
            continue
        yield key, value


class LSMMaintenanceDaemon:
    """Scheduler daemon driving one store's flush/compaction cycle.

    Registered by the server when the LSM engine is selected, it runs
    under the scheduler's quarantine/parole supervision like every other
    background worker — a store whose maintenance keeps failing is
    quarantined and paroled with backoff instead of wedging the server.
    """

    name = "lsm-maintenance"

    def __init__(self, store: LSMStore) -> None:
        self.store = store

    def run_once(self) -> int:
        return self.store.run_maintenance()
