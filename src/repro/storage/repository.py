"""The two-store repository façade the Memex server works against.

Figure 3's "loosely synchronized data repositories": a relational database
for metadata plus a lightweight key-value store for term-level data, tied
together by the versioning coordinator.  Daemons and servlets never touch
the raw stores; they go through this façade, which also hands out the
monotone id sequences the catalog tables need.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from .codec import Codec
from .engine import Namespace, engine_store_path, open_engine
from .relational import Database, Row
from .schema import (
    ARCHIVE_COMMUNITY,
    ARCHIVE_MODES,
    ASSOC_SOURCES,
    create_catalog,
)
from .versioning import VersionCoordinator
from ..errors import SchemaError
from ..obs import (
    Clock,
    LogHub,
    MetricsRegistry,
    Tracer,
    null_registry,
    null_tracer,
)


class ChangeStamps:
    """Monotone change counters over the catalog's mutable tables.

    The versioning coordinator covers what the *crawler* produces; these
    stamps cover the immediate UI writes that bypass it (visits,
    bookmarks, folder edits, reclassifications).  Each is a plain int
    bumped on the corresponding write path — the same zero-cost pattern
    as the repository's pull counters — and the read-path caches fold the
    stamps a result depends on into its validity, so a cached search or
    trail can never outlive the writes that would change it.

    Stamps only ever increase; equality of a stamp tuple therefore means
    "none of these tables changed in between".
    """

    __slots__ = ("visits", "assocs", "classifications", "folders",
                 "pages", "links", "users", "covisits")

    def __init__(self) -> None:
        self.visits = 0
        self.assocs = 0
        self.classifications = 0
        self.folders = 0
        self.pages = 0
        self.links = 0
        self.users = 0
        self.covisits = 0


class Sequence:
    """Monotone integer id allocator persisted in the key-value store."""

    def __init__(self, ns: Namespace, name: str) -> None:
        self._ns = ns
        self._codec = ns.store.codec
        self._key = name.encode("utf-8")
        raw = ns.get(self._key)
        # codec.decode reads both historical ascii-int records and
        # binary-codec records, whichever codec wrote the store.
        self._next = int(self._codec.decode(raw)) if raw is not None else 1
        # Allocation is a read-increment-persist compound; its own lock
        # keeps handed-out ids unique even when a handle escapes the
        # repository lock.
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            self._ns.put(self._key, self._codec.encode(self._next))
        return value

    def take(self, n: int) -> range:
        """Allocate *n* consecutive ids with a single store write."""
        if n < 0:
            raise ValueError("cannot allocate a negative id count")
        with self._lock:
            start = self._next
            if n:
                self._next += n
                self._ns.put(self._key, self._codec.encode(self._next))
        return range(start, start + n)

    def peek(self) -> int:
        return self._next


class MemexRepository:
    """Owns the RDBMS, the KV store, the version coordinator and sequences.

    Parameters
    ----------
    root:
        Directory for persistent state, or ``None`` for a fully in-memory
        repository (the default for simulations and tests).
    clock:
        Wall-clock source for default timestamps; injectable so tests and
        the obs subsystem share one deterministic time source.
    metrics:
        Observability registry threaded into the relational engine, the
        KV store, and the version coordinator; defaults to the shared
        disabled registry.
    tracer:
        When provided, visit writes run under ``storage.*`` child spans
        (only when a request span is already active — storage never
        *starts* a trace).
    log_hub:
        When provided, the version coordinator logs publishes/aborts
        through it (component ``versioning``).
    storage_engine:
        Term-store engine name (``"btree"`` or ``"lsm"``), resolved
        through :func:`repro.storage.open_engine`.
    codec:
        Record codec (``"json"``/``"binary"``) injected into both the
        relational WAL and the term store.
    """

    #: Bound on the in-memory visit -> origin-traceparent side table.
    VISIT_ORIGIN_CAP = 4096

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        sync: bool = False,
        clock: Clock = time.time,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        log_hub: LogHub | None = None,
        storage_engine: str = "btree",
        codec: str | Codec | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.clock = clock
        self.metrics = metrics if metrics is not None else null_registry()
        self.tracer = tracer if tracer is not None else null_tracer()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self.db = Database(
                self.root / "catalog.wal",
                sync=sync, metrics=self.metrics, codec=codec,
            )
            self.kv = open_engine(
                storage_engine,
                engine_store_path(self.root, storage_engine),
                sync=sync, metrics=self.metrics, codec=codec,
            )
        else:
            self.db = Database(metrics=self.metrics, codec=codec)
            self.kv = open_engine(
                storage_engine, metrics=self.metrics, codec=codec,
            )
        create_catalog(self.db)
        self.versions = VersionCoordinator(
            metrics=self.metrics,
            log=log_hub.logger("versioning") if log_hub is not None else None,
        )
        # Visit -> origin traceparent, bounded and in-memory: trace
        # linkage is an observability aid for *recent* visits, not part
        # of the durable schema (old WALs must keep replaying unchanged).
        self._visit_origins: dict[int, str] = {}
        self._visit_origin_order: deque[int] = deque()
        #: Monotone per-table change counters (see :class:`ChangeStamps`);
        #: the read-path caches' signal for writes versioning doesn't cover.
        self.stamps = ChangeStamps()
        # Repository lock ("repository" rank in repro.locks.LOCK_ORDER,
        # above the storage-engine locks it nests over): serializes the
        # façade's compound write paths — check-then-act upserts, id
        # allocation + row insertion, stamp/counter bumps, the bounded
        # visit-origin table — so each façade mutation is atomic.  Reads
        # go straight to the underlying stores, which lock themselves.
        self._repo_lock = threading.RLock()
        # Hot-path counts are plain ints pulled by the registry at read
        # time (zero per-event instrument cost).
        self._n_page_reads = 0
        self._n_page_writes = 0
        self._n_visit_writes = 0
        self._n_assoc_writes = 0
        self._n_covisit_writes = 0
        self.metrics.counter_func(
            "storage.repository.covisit_writes",
            lambda: self._n_covisit_writes)
        self.metrics.counter_func(
            "storage.repository.page_reads", lambda: self._n_page_reads)
        self.metrics.counter_func(
            "storage.repository.page_writes", lambda: self._n_page_writes)
        self.metrics.counter_func(
            "storage.repository.visit_writes", lambda: self._n_visit_writes)
        self.metrics.counter_func(
            "storage.repository.assoc_writes", lambda: self._n_assoc_writes)
        self._seq_ns = Namespace(self.kv, "_seq")
        self._sequences: dict[str, Sequence] = {}
        # Namespaces for term-level data, mirroring the paper's split of
        # "several text-related indices in Berkeley DB".
        self.postings = Namespace(self.kv, "postings")
        self.doclen = Namespace(self.kv, "doclen")
        self.termstats = Namespace(self.kv, "termstats")
        self.rawtext = Namespace(self.kv, "rawtext")
        self.models = Namespace(self.kv, "models")

    # -- id allocation ------------------------------------------------------------

    def sequence(self, name: str) -> Sequence:
        with self._repo_lock:
            if name not in self._sequences:
                self._sequences[name] = Sequence(self._seq_ns, name)
            return self._sequences[name]

    # -- users -----------------------------------------------------------------------

    def add_user(
        self,
        user_id: str,
        *,
        name: str | None = None,
        community: str | None = None,
        archive_mode: str = ARCHIVE_COMMUNITY,
        now: float | None = None,
    ) -> None:
        if archive_mode not in ARCHIVE_MODES:
            raise SchemaError(f"unknown archive mode {archive_mode!r}")
        with self._repo_lock:
            self.db.insert("users", {
                "user_id": user_id,
                "name": name or user_id,
                "community": community,
                "archive_mode": archive_mode,
                "created_at": now if now is not None else self.clock(),
            })
            self.stamps.users += 1

    def get_user(self, user_id: str) -> Row | None:
        return self.db.table("users").get(user_id)

    def set_archive_mode(self, user_id: str, mode: str) -> None:
        if mode not in ARCHIVE_MODES:
            raise SchemaError(f"unknown archive mode {mode!r}")
        with self._repo_lock:
            self.db.update("users", user_id, {"archive_mode": mode})
            self.stamps.users += 1

    def community_users(self, community: str | None = None) -> list[Row]:
        if community is None:
            return self.db.table("users").select()
        return self.db.table("users").select({"community": community})

    # -- pages and links -------------------------------------------------------------

    def upsert_page(
        self,
        url: str,
        *,
        title: str | None = None,
        text: str | None = None,
        front_page: bool = False,
        now: float,
        produced_version: int | None = None,
    ) -> bool:
        """Record a page; returns True when the URL was new.

        Raw text is stashed in the KV store (``rawtext`` namespace) keyed by
        URL, so term-level consumers never round-trip through the RDBMS.
        """
        content_hash = (
            hashlib.sha1(text.encode("utf-8")).hexdigest() if text is not None else None
        )
        with self._repo_lock:
            return self._upsert_page_locked(
                url, title=title, text=text, front_page=front_page,
                now=now, produced_version=produced_version,
                content_hash=content_hash,
            )

    def _upsert_page_locked(
        self,
        url: str,
        *,
        title: str | None,
        text: str | None,
        front_page: bool,
        now: float,
        produced_version: int | None,
        content_hash: str | None,
    ) -> bool:
        pages = self.db.table("pages")
        existing = pages.get(url)
        if existing is None:
            self.db.insert("pages", {
                "url": url,
                "title": title,
                "fetched": text is not None,
                "content_hash": content_hash,
                "first_seen": now,
                "last_seen": now,
                "produced_version": produced_version,
                "front_page": front_page,
            })
            created = True
        else:
            changes: Row = {"last_seen": now}
            if text is not None:
                changes.update({
                    "fetched": True,
                    "content_hash": content_hash,
                    "produced_version": produced_version,
                })
            if title is not None:
                changes["title"] = title
            self.db.update("pages", url, changes)
            created = False
        if text is not None:
            self.rawtext.put(url.encode("utf-8"), text.encode("utf-8"))
        self._n_page_writes += 1
        self.stamps.pages += 1
        return created

    def page_text(self, url: str) -> str | None:
        self._n_page_reads += 1
        raw = self.rawtext.get(url.encode("utf-8"))
        return raw.decode("utf-8") if raw is not None else None

    def add_link(self, src: str, dst: str, *, now: float) -> int:
        with self._repo_lock:
            link_id = self.sequence("links").next()
            self.db.insert("links", {
                "link_id": link_id, "src": src, "dst": dst, "discovered_at": now,
            })
            self.stamps.links += 1
            return link_id

    def out_links(self, url: str) -> list[str]:
        return [r["dst"] for r in self.db.table("links").select({"src": url})]

    def in_links(self, url: str) -> list[str]:
        return [r["src"] for r in self.db.table("links").select({"dst": url})]

    # -- visits -------------------------------------------------------------------------

    def _remember_origin(self, visit_id: int, origin: str | None) -> None:
        """Retain the visit's origin traceparent (bounded, best-effort)."""
        if origin is None:
            return
        self._visit_origins[visit_id] = origin
        self._visit_origin_order.append(visit_id)
        while len(self._visit_origin_order) > self.VISIT_ORIGIN_CAP:
            evicted = self._visit_origin_order.popleft()
            self._visit_origins.pop(evicted, None)

    def visit_origin(self, visit_id: int) -> str | None:
        """The traceparent of the request that recorded *visit_id*, if
        still retained (the side table is bounded; misses mean unlinked,
        never an error)."""
        return self._visit_origins.get(visit_id)

    def record_visit(
        self,
        user_id: str,
        url: str,
        *,
        at: float,
        session_id: int,
        referrer: str | None,
        archive_mode: str,
        origin: str | None = None,
    ) -> int:
        with self.tracer.child_span("storage.record_visit"):
            with self._repo_lock:
                visit_id = self.sequence("visits").next()
                self.db.insert("visits", {
                    "visit_id": visit_id,
                    "user_id": user_id,
                    "url": url,
                    "at": at,
                    "session_id": session_id,
                    "referrer": referrer,
                    "archive_mode": archive_mode,
                    "topic_folder": None,
                    "topic_confidence": None,
                })
                self._remember_origin(visit_id, origin)
                self._n_visit_writes += 1
                self.stamps.visits += 1
        return visit_id

    def record_visit_batch(self, items: list[dict[str, Any]]) -> list[int]:
        """Group commit for the visit servlet's batch path.

        Each item is ``{user_id, url, at, session_id, referrer,
        archive_mode}``.  Visit ids come from one sequence allocation (one
        KV write), and every page upsert plus every visit row lands in ONE
        relational transaction — one WAL record, one fsync — instead of
        2N+ of each.  Page upserts are deduplicated within the batch
        (first occurrence sets ``first_seen``, the last one wins
        ``last_seen``), exactly what sequential :meth:`upsert_page` calls
        would have produced.  Atomic: on constraint failure nothing is
        applied (allocated ids are simply skipped).

        Ordering guarantee: the returned ids are consecutive, strictly
        increasing, and positionally aligned with *items* —
        ``result[i]`` is the id of ``items[i]``, and the whole block
        sorts after every previously recorded visit.  A batch is
        therefore indistinguishable, id-order-wise, from calling
        :meth:`record_visit` once per item in list order, so consumers
        that replay visits by id (crawler queues, trail reconstruction)
        see the same sequence either way.  Items are NOT re-sorted by
        their ``at`` timestamp — callers who need id order to agree with
        time order must submit items in time order, which the applet's
        batching client does by buffering events as they occur.
        """
        if not items:
            return []
        with self.tracer.child_span(
            "storage.record_visit_batch", items=len(items),
        ):
            with self._repo_lock:
                visit_ids = self._record_visit_batch(items)
                for item, visit_id in zip(items, visit_ids):
                    self._remember_origin(visit_id, item.get("origin"))
        return visit_ids

    def _record_visit_batch(self, items: list[dict[str, Any]]) -> list[int]:
        visit_ids = list(self.sequence("visits").take(len(items)))
        pages = self.db.table("pages")
        inserts: dict[str, Row] = {}
        updates: dict[str, Row] = {}
        for item in items:
            url = item["url"]
            now = item["at"]
            if url in inserts:
                inserts[url]["last_seen"] = now
            elif url in updates:
                updates[url]["last_seen"] = now
            elif pages.get(url) is None:
                inserts[url] = {
                    "url": url,
                    "title": None,
                    "fetched": False,
                    "content_hash": None,
                    "first_seen": now,
                    "last_seen": now,
                    "produced_version": None,
                    "front_page": False,
                }
            else:
                updates[url] = {"last_seen": now}
        with self.db.begin() as txn:
            txn.insert_many("pages", inserts.values())
            for url, changes in updates.items():
                txn.update("pages", url, changes)
            txn.insert_many("visits", (
                {
                    "visit_id": visit_id,
                    "user_id": item["user_id"],
                    "url": item["url"],
                    "at": item["at"],
                    "session_id": item["session_id"],
                    "referrer": item["referrer"],
                    "archive_mode": item["archive_mode"],
                    "topic_folder": None,
                    "topic_confidence": None,
                }
                for item, visit_id in zip(items, visit_ids)
            ))
        self._n_page_writes += len(inserts) + len(updates)
        self._n_visit_writes += len(items)
        self.stamps.pages += len(inserts) + len(updates)
        self.stamps.visits += len(items)
        return visit_ids

    def classify_visit(self, visit_id: int, folder_id: str, confidence: float) -> None:
        """Annotate one visit row with the classifier's (folder,
        confidence) decision — the write behind Figure 1's '?' guesses."""
        with self._repo_lock:
            self.db.update("visits", visit_id, {
                "topic_folder": folder_id, "topic_confidence": confidence,
            })
            self.stamps.classifications += 1

    def user_visits(
        self,
        user_id: str,
        *,
        since: float | None = None,
        until: float | None = None,
    ) -> list[Row]:
        rows = self.db.table("visits").select({"user_id": user_id}, order_by="at")
        if since is not None:
            rows = [r for r in rows if r["at"] >= since]
        if until is not None:
            rows = [r for r in rows if r["at"] <= until]
        return rows

    def community_visits(
        self,
        *,
        since: float | None = None,
        public_only: bool = True,
    ) -> list[Row]:
        """Visits archived for community use (optionally since a time)."""
        def pred(r: Row) -> bool:
            if public_only and r["archive_mode"] != ARCHIVE_COMMUNITY:
                return False
            return since is None or r["at"] >= since
        return self.db.table("visits").select(pred, order_by="at")

    # -- co-visitation pairs ------------------------------------------------------------

    @staticmethod
    def covisit_pair_id(url_a: str, url_b: str) -> str:
        """Stable primary key for the unordered pair (sorted, tab-joined)."""
        a, b = sorted((url_a, url_b))
        return f"{a}\t{b}"

    def upsert_covisits(
        self,
        increments: dict[tuple[str, str], float],
        *,
        now: float,
        decay: float = 0.0,
    ) -> int:
        """Fold a batch of co-visitation increments into the matrix.

        Each key is an unordered URL pair; an existing row's count first
        decays by ``exp(-decay * (now - last_at))`` (so stale evidence
        fades at read-compatible rates), then the increment is added.
        One relational transaction for the whole batch; bumps the
        ``covisits`` change stamp the related-pages cache watches.
        """
        if not increments:
            return 0
        with self._repo_lock:
            table = self.db.table("covisits")
            inserts: list[Row] = []
            updates: dict[str, Row] = {}
            for (url_a, url_b), inc in increments.items():
                a, b = sorted((url_a, url_b))
                pair_id = f"{a}\t{b}"
                row = updates.get(pair_id) or table.get(pair_id)
                if row is None:
                    inserts.append({
                        "pair_id": pair_id, "url_a": a, "url_b": b,
                        "count": float(inc), "last_at": now,
                    })
                else:
                    aged = row["count"] * math.exp(
                        -decay * max(now - row["last_at"], 0.0))
                    updates[pair_id] = {
                        **row, "count": aged + float(inc), "last_at": now,
                    }
            with self.db.begin() as txn:
                txn.insert_many("covisits", inserts)
                for pair_id, row in updates.items():
                    txn.update("covisits", pair_id, {
                        "count": row["count"], "last_at": row["last_at"],
                    })
            self._n_covisit_writes += len(inserts) + len(updates)
            self.stamps.covisits += 1
        return len(inserts) + len(updates)

    def covisits_for(self, url: str) -> list[tuple[str, float, float]]:
        """``(other_url, count, last_at)`` rows touching *url*, best first."""
        table = self.db.table("covisits")
        out: list[tuple[str, float, float]] = []
        for row in table.select({"url_a": url}):
            out.append((row["url_b"], row["count"], row["last_at"]))
        for row in table.select({"url_b": url}):
            out.append((row["url_a"], row["count"], row["last_at"]))
        out.sort(key=lambda t: (-t[1], t[0]))
        return out

    def prune_covisits(self, *, now: float, decay: float, floor: float) -> int:
        """Compaction: drop pairs whose decayed count fell below *floor*."""
        with self._repo_lock:
            doomed = [
                row["pair_id"]
                for row in self.db.table("covisits").scan()
                if row["count"] * math.exp(-decay * max(now - row["last_at"], 0.0))
                < floor
            ]
            if doomed:
                with self.db.begin() as txn:
                    for pair_id in doomed:
                        txn.delete("covisits", pair_id)
                self.stamps.covisits += 1
        return len(doomed)

    def covisit_pair_count(self) -> int:
        return self.db.table("covisits").count()

    # -- folders and associations ------------------------------------------------------------

    def add_folder(
        self,
        folder_id: str,
        owner: str,
        name: str,
        parent: str | None,
        *,
        now: float,
    ) -> None:
        with self._repo_lock:
            self.db.insert("folders", {
                "folder_id": folder_id, "owner": owner, "name": name,
                "parent": parent, "created_at": now,
            })
            self.stamps.folders += 1

    def user_folders(self, owner: str) -> list[Row]:
        return self.db.table("folders").select({"owner": owner})

    def remove_folder(self, folder_id: str) -> None:
        with self._repo_lock:
            for assoc in self.db.table("folder_pages").select({"folder_id": folder_id}):
                self.db.delete("folder_pages", assoc["assoc_id"])
                self.stamps.assocs += 1
            self.db.delete("folders", folder_id)
            self.stamps.folders += 1

    def associate(
        self,
        folder_id: str,
        url: str,
        source: str,
        *,
        confidence: float | None = None,
        now: float,
    ) -> int:
        if source not in ASSOC_SOURCES:
            raise SchemaError(f"unknown association source {source!r}")
        with self._repo_lock:
            assoc_id = self.sequence("assocs").next()
            self.db.insert("folder_pages", {
                "assoc_id": assoc_id,
                "folder_id": folder_id,
                "url": url,
                "source": source,
                "confidence": confidence,
                "at": now,
            })
            self._n_assoc_writes += 1
            self.stamps.assocs += 1
            return assoc_id

    def folder_pages(self, folder_id: str, *, sources: tuple[str, ...] | None = None) -> list[Row]:
        rows = self.db.table("folder_pages").select({"folder_id": folder_id})
        if sources is not None:
            rows = [r for r in rows if r["source"] in sources]
        return rows

    def page_folders(self, url: str) -> list[Row]:
        return self.db.table("folder_pages").select({"url": url})

    def dissociate(self, folder_id: str, url: str, *, sources: tuple[str, ...] | None = None) -> int:
        """Remove folder-page associations; returns how many were removed."""
        removed = 0
        with self._repo_lock:
            for row in self.folder_pages(folder_id, sources=sources):
                if row["url"] == url:
                    self.db.delete("folder_pages", row["assoc_id"])
                    removed += 1
            self.stamps.assocs += removed
        return removed

    # -- model blobs -------------------------------------------------------------------------------

    def save_model(self, name: str, payload: dict[str, Any]) -> None:
        """Persist a mined model (classifier, themes) in the KV store,
        serialized through the store's record codec."""
        self.models.put(name.encode("utf-8"), self.kv.codec.encode(payload))

    def load_model(self, name: str) -> dict[str, Any] | None:
        raw = self.models.get(name.encode("utf-8"))
        return self.kv.codec.decode(raw) if raw is not None else None

    # -- lifecycle -----------------------------------------------------------------------------------

    def storage_stats(self) -> dict[str, Any]:
        """The term store's engine-level operational stats (see
        ``StorageEngine.stats``), keyed for the stats servlet."""
        return dict(self.kv.stats())

    def close(self) -> None:
        self.db.close()
        self.kv.close()

    def __enter__(self) -> "MemexRepository":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
