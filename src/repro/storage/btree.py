"""A disk-paged B+-tree: the Berkeley-DB-faithful storage engine.

The default :class:`~repro.storage.kvstore.KVStore` replays its log into
RAM — fine for Memex-per-community scale, but the paper's Berkeley DB was
a *paged B-tree* whose working set lives on disk.  This module provides
that engine: fixed-size pages in a single file, an LRU page cache with
dirty-page write-back, leaf chaining for range scans, and a free list for
reclaimed pages.

Layout
------
Page 0 is the metadata page::

    magic 'MBT1' | u32 page_size | u32 root | u32 npages | u32 free_head
    | u64 count

Every other page starts with a one-byte type tag:

* **leaf** (0): ``u16 nrecs | u32 next_leaf`` then ``nrecs`` records of
  ``u16 klen | u16 vlen | key | value``, key-sorted;
* **internal** (1): ``u16 nkeys | u32 child0`` then ``nkeys`` entries of
  ``u16 klen | key | u32 child`` — child_i holds keys >= key_i.

Deletion removes records in place; a leaf that empties is unlinked from
its parent and recycled through the free list (no rebalancing — pages may
run underfull, the classic simplification, which costs space but never
correctness).

Durability: pages are flushed on :meth:`flush`/:meth:`close` (checkpoint
semantics).  A torn checkpoint corrupts the file, so crash safety comes
from layering — Memex logs through the WAL and treats the tree as a
rebuildable index, exactly how its Berkeley DB indices were treated.
"""

from __future__ import annotations

import os
import struct
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path

from ..errors import CorruptLog, KeyNotFound, KVStoreError, StoreClosed
from ..obs import MetricsRegistry, null_registry

MAGIC = b"MBT1"
_META = struct.Struct("<4sIIIIQ")  # magic, page_size, root, npages, free_head, count
_LEAF_HEAD = struct.Struct("<BHI")   # type, nrecs, next_leaf
_INT_HEAD = struct.Struct("<BHI")    # type, nkeys, child0
_REC = struct.Struct("<HH")          # klen, vlen
_IKEY = struct.Struct("<HI")         # klen, child

LEAF, INTERNAL = 0, 1
NO_PAGE = 0  # page 0 is meta, so 0 doubles as the null pointer


class _Leaf:
    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[bytes] = []
        self.next_leaf: int = NO_PAGE

    def encode(self) -> bytes:
        parts = [_LEAF_HEAD.pack(LEAF, len(self.keys), self.next_leaf)]
        for k, v in zip(self.keys, self.values):
            parts.append(_REC.pack(len(k), len(v)))
            parts.append(k)
            parts.append(v)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "_Leaf":
        node = cls()
        _type, nrecs, node.next_leaf = _LEAF_HEAD.unpack_from(data)
        offset = _LEAF_HEAD.size
        for _ in range(nrecs):
            klen, vlen = _REC.unpack_from(data, offset)
            offset += _REC.size
            node.keys.append(data[offset:offset + klen])
            offset += klen
            node.values.append(data[offset:offset + vlen])
            offset += vlen
        return node

    def nbytes(self) -> int:
        return _LEAF_HEAD.size + sum(
            _REC.size + len(k) + len(v)
            for k, v in zip(self.keys, self.values)
        )


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.children: list[int] = []  # len(keys) + 1

    def encode(self) -> bytes:
        parts = [_INT_HEAD.pack(INTERNAL, len(self.keys), self.children[0])]
        for key, child in zip(self.keys, self.children[1:]):
            parts.append(_IKEY.pack(len(key), child))
            parts.append(key)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "_Internal":
        node = cls()
        _type, nkeys, child0 = _INT_HEAD.unpack_from(data)
        node.children.append(child0)
        offset = _INT_HEAD.size
        for _ in range(nkeys):
            klen, child = _IKEY.unpack_from(data, offset)
            offset += _IKEY.size
            node.keys.append(data[offset:offset + klen])
            offset += klen
            node.children.append(child)
        return node

    def nbytes(self) -> int:
        return _INT_HEAD.size + sum(_IKEY.size + len(k) for k in self.keys)

    def child_for(self, key: bytes) -> int:
        return self.children[bisect_right(self.keys, key)]


class BTree:
    """Disk-paged B+-tree with bytes keys/values.

    Parameters
    ----------
    path:
        Backing file; created when missing.
    page_size:
        Bytes per page.  Keys+values must fit a quarter page so a split
        always succeeds.
    cache_pages:
        LRU page-cache capacity.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        page_size: int = 4096,
        cache_pages: int = 256,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        m = metrics if metrics is not None else null_registry()
        self._n_splits = 0
        self._n_page_writes = 0
        m.counter_func("storage.btree.splits", lambda: self._n_splits)
        m.counter_func("storage.btree.page_writes", lambda: self._n_page_writes)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._cache: OrderedDict[int, _Leaf | _Internal] = OrderedDict()
        self._dirty: set[int] = set()
        self._cache_pages = cache_pages
        self._closed = False
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = open(self.path, "r+b" if exists else "w+b")
        if exists:
            self._load_meta()
        else:
            self.page_size = page_size
            self._root = 1
            self._npages = 2
            self._free_head = NO_PAGE
            self._count = 0
            root = _Leaf()
            self._cache[1] = root
            self._dirty.add(1)
            self._write_meta()
            self.flush()
        self.max_record = self.page_size // 4

    # -- metadata --------------------------------------------------------------

    def _load_meta(self) -> None:
        self._fh.seek(0)
        raw = self._fh.read(_META.size)
        if len(raw) < _META.size:
            raise CorruptLog(f"{self.path}: truncated meta page")
        magic, page_size, root, npages, free_head, count = _META.unpack(raw)
        if magic != MAGIC:
            raise CorruptLog(f"{self.path}: bad magic {magic!r}")
        self.page_size = page_size
        self._root = root
        self._npages = npages
        self._free_head = free_head
        self._count = count

    def _write_meta(self) -> None:
        self._fh.seek(0)
        self._fh.write(_META.pack(
            MAGIC, self.page_size, self._root,
            self._npages, self._free_head, self._count,
        ).ljust(self.page_size, b"\x00"))

    # -- page I/O -------------------------------------------------------------------

    def _read_page(self, page_id: int) -> _Leaf | _Internal:
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        self._fh.seek(page_id * self.page_size)
        data = self._fh.read(self.page_size)
        if len(data) < _LEAF_HEAD.size:
            raise CorruptLog(f"{self.path}: short page {page_id}")
        node: _Leaf | _Internal
        node = _Leaf.decode(data) if data[0] == LEAF else _Internal.decode(data)
        self._put_cache(page_id, node)
        return node

    def _put_cache(self, page_id: int, node: _Leaf | _Internal) -> None:
        self._cache[page_id] = node
        self._cache.move_to_end(page_id)
        while len(self._cache) > self._cache_pages:
            victim, vnode = self._cache.popitem(last=False)
            if victim in self._dirty:
                self._write_page(victim, vnode)
                self._dirty.discard(victim)

    def _write_page(self, page_id: int, node: _Leaf | _Internal) -> None:
        data = node.encode()
        self._n_page_writes += 1
        if len(data) > self.page_size:
            raise KVStoreError(
                f"page {page_id} overflow: {len(data)} > {self.page_size}"
            )
        self._fh.seek(page_id * self.page_size)
        self._fh.write(data.ljust(self.page_size, b"\x00"))

    def _mark_dirty(self, page_id: int, node: _Leaf | _Internal) -> None:
        self._put_cache(page_id, node)
        self._dirty.add(page_id)

    def _alloc_page(self) -> int:
        if self._free_head != NO_PAGE:
            page_id = self._free_head
            self._fh.seek(page_id * self.page_size)
            raw = self._fh.read(4)
            self._free_head = struct.unpack("<I", raw)[0] if len(raw) == 4 else NO_PAGE
            return page_id
        page_id = self._npages
        self._npages += 1
        return page_id

    def _free_page(self, page_id: int) -> None:
        self._fh.seek(page_id * self.page_size)
        self._fh.write(struct.pack("<I", self._free_head).ljust(self.page_size, b"\x00"))
        self._free_head = page_id
        self._cache.pop(page_id, None)
        self._dirty.discard(page_id)

    # -- lookup ------------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("btree is closed")

    def _descend(self, key: bytes) -> tuple[list[tuple[int, int]], int]:
        """Path of (page_id, child_index) internal steps plus the leaf id."""
        path: list[tuple[int, int]] = []
        page_id = self._root
        node = self._read_page(page_id)
        while isinstance(node, _Internal):
            idx = bisect_right(node.keys, key)
            path.append((page_id, idx))
            page_id = node.children[idx]
            node = self._read_page(page_id)
        return path, page_id

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        self._check_open()
        _path, leaf_id = self._descend(key)
        leaf = self._read_page(leaf_id)
        assert isinstance(leaf, _Leaf)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return default

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None or self._has_exact(key)

    def _has_exact(self, key: bytes) -> bool:
        _path, leaf_id = self._descend(key)
        leaf = self._read_page(leaf_id)
        assert isinstance(leaf, _Leaf)
        i = bisect_left(leaf.keys, key)
        return i < len(leaf.keys) and leaf.keys[i] == key

    def __len__(self) -> int:
        return self._count

    # -- insertion ----------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("btree keys and values must be bytes")
        if not key:
            raise KVStoreError("empty keys are not allowed")
        if len(key) + len(value) + _REC.size > self.max_record:
            raise KVStoreError(
                f"record of {len(key) + len(value)} bytes exceeds the "
                f"max of {self.max_record} for page size {self.page_size}"
            )
        path, leaf_id = self._descend(key)
        leaf = self._read_page(leaf_id)
        assert isinstance(leaf, _Leaf)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.values[i] = value
        else:
            leaf.keys.insert(i, key)
            leaf.values.insert(i, value)
            self._count += 1
        self._mark_dirty(leaf_id, leaf)
        if leaf.nbytes() > self.page_size:
            self._split_leaf(path, leaf_id, leaf)

    def _split_leaf(
        self, path: list[tuple[int, int]], leaf_id: int, leaf: _Leaf
    ) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right_id = self._alloc_page()
        leaf.next_leaf = right_id
        separator = right.keys[0]
        self._mark_dirty(leaf_id, leaf)
        self._mark_dirty(right_id, right)
        self._n_splits += 1
        self._insert_into_parent(path, leaf_id, separator, right_id)

    def _insert_into_parent(
        self,
        path: list[tuple[int, int]],
        left_id: int,
        separator: bytes,
        right_id: int,
    ) -> None:
        if not path:
            new_root = _Internal()
            new_root.children = [left_id, right_id]
            new_root.keys = [separator]
            root_id = self._alloc_page()
            self._mark_dirty(root_id, new_root)
            self._root = root_id
            return
        parent_id, idx = path[-1]
        parent = self._read_page(parent_id)
        assert isinstance(parent, _Internal)
        parent.keys.insert(idx, separator)
        parent.children.insert(idx + 1, right_id)
        self._mark_dirty(parent_id, parent)
        if parent.nbytes() > self.page_size:
            self._split_internal(path[:-1], parent_id, parent)

    def _split_internal(
        self, path: list[tuple[int, int]], node_id: int, node: _Internal
    ) -> None:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        right_id = self._alloc_page()
        self._mark_dirty(node_id, node)
        self._mark_dirty(right_id, right)
        self._n_splits += 1
        self._insert_into_parent(path, node_id, separator, right_id)

    # -- deletion ------------------------------------------------------------------------

    def delete(self, key: bytes) -> None:
        self._check_open()
        path, leaf_id = self._descend(key)
        leaf = self._read_page(leaf_id)
        assert isinstance(leaf, _Leaf)
        i = bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            raise KeyNotFound(repr(key))
        del leaf.keys[i]
        del leaf.values[i]
        self._count -= 1
        self._mark_dirty(leaf_id, leaf)
        if not leaf.keys and path:
            self._unlink_empty_leaf(path, leaf_id)

    def discard(self, key: bytes) -> bool:
        try:
            self.delete(key)
            return True
        except KeyNotFound:
            return False

    # Mapping sugar, matching KVStore's interface so Namespace (and
    # therefore the inverted index) can run over either engine.

    def __getitem__(self, key: bytes) -> bytes:
        value = self.get(key)
        if value is None and not self._has_exact(key):
            raise KeyNotFound(repr(key))
        return value if value is not None else b""

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def _unlink_empty_leaf(
        self, path: list[tuple[int, int]], leaf_id: int
    ) -> None:
        # Fix the leaf chain: predecessor leaf (if any) skips us.  Finding
        # the predecessor costs a walk along the level; empty leaves are
        # rare enough (bulk deletes) that simplicity wins.
        prev_id = self._find_previous_leaf(leaf_id)
        leaf = self._read_page(leaf_id)
        assert isinstance(leaf, _Leaf)
        if prev_id is not None:
            prev = self._read_page(prev_id)
            assert isinstance(prev, _Leaf)
            prev.next_leaf = leaf.next_leaf
            self._mark_dirty(prev_id, prev)
        parent_id, idx = path[-1]
        parent = self._read_page(parent_id)
        assert isinstance(parent, _Internal)
        del parent.children[idx]
        if parent.keys:
            del parent.keys[max(0, idx - 1)]
        self._mark_dirty(parent_id, parent)
        self._free_page(leaf_id)
        # Collapse chains of single-child internals up the path.
        level = len(path) - 1
        while level >= 0:
            node_id, _ = path[level]
            node = self._read_page(node_id)
            assert isinstance(node, _Internal)
            if len(node.children) == 1:
                only = node.children[0]
                if level == 0:
                    self._root = only
                    self._free_page(node_id)
                else:
                    up_id, up_idx = path[level - 1]
                    up = self._read_page(up_id)
                    assert isinstance(up, _Internal)
                    up.children[up_idx] = only
                    self._mark_dirty(up_id, up)
                    self._free_page(node_id)
            level -= 1

    def _find_previous_leaf(self, leaf_id: int) -> int | None:
        current = self._first_leaf_id()
        if current == leaf_id:
            return None
        while current != NO_PAGE:
            node = self._read_page(current)
            assert isinstance(node, _Leaf)
            if node.next_leaf == leaf_id:
                return current
            current = node.next_leaf
        return None

    def _first_leaf_id(self) -> int:
        page_id = self._root
        node = self._read_page(page_id)
        while isinstance(node, _Internal):
            page_id = node.children[0]
            node = self._read_page(page_id)
        return page_id

    # -- scans --------------------------------------------------------------------------------

    def cursor(
        self,
        start: bytes | None = None,
        end: bytes | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate key-ordered pairs over ``[start, end)`` via the leaf chain."""
        self._check_open()
        if start is None:
            leaf_id = self._first_leaf_id()
            index = 0
        else:
            _path, leaf_id = self._descend(start)
            leaf = self._read_page(leaf_id)
            assert isinstance(leaf, _Leaf)
            index = bisect_left(leaf.keys, start)
        while leaf_id != NO_PAGE:
            leaf = self._read_page(leaf_id)
            assert isinstance(leaf, _Leaf)
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if end is not None and key >= end:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf_id = leaf.next_leaf
            index = 0

    def prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        if not prefix:
            yield from self.cursor()
            return
        end = None
        if prefix[-1] < 0xFF:
            end = prefix[:-1] + bytes([prefix[-1] + 1])
        for key, value in self.cursor(start=prefix, end=end):
            if not key.startswith(prefix):
                break
            yield key, value

    def keys(self) -> list[bytes]:
        return [k for k, _ in self.cursor()]

    # -- lifecycle ------------------------------------------------------------------------------

    def flush(self) -> None:
        """Checkpoint: write every dirty page plus metadata."""
        self._check_open()
        for page_id in sorted(self._dirty):
            node = self._cache.get(page_id)
            if node is not None:
                self._write_page(page_id, node)
        self._dirty.clear()
        self._write_meta()
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "BTree":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def stats(self) -> dict[str, int]:
        self._check_open()
        free = 0
        head = self._free_head
        while head != NO_PAGE:
            free += 1
            self._fh.seek(head * self.page_size)
            raw = self._fh.read(4)
            head = struct.unpack("<I", raw)[0] if len(raw) == 4 else NO_PAGE
        depth = 1
        node = self._read_page(self._root)
        while isinstance(node, _Internal):
            depth += 1
            node = self._read_page(node.children[0])
        return {
            "entries": self._count,
            "pages": self._npages,
            "free_pages": free,
            "depth": depth,
            "cached_pages": len(self._cache),
        }
