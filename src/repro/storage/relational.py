"""In-process relational engine: the reproduction's Oracle/DB2 stand-in.

The paper keeps "metadata about pages, links, users, and topics" (§3) in an
RDBMS.  This module provides what that workload needs, in pure Python:

* typed schemas with primary keys and nullable columns,
* hash indexes for equality lookups and ordered indexes for range scans,
* predicate selects, equi-joins, group-by aggregation,
* transactions (begin / commit / abort) with WAL-based crash recovery,
* unique-constraint enforcement.

It is intentionally *not* a SQL parser — queries are expressed through a
small fluent API — but the semantics (atomic multi-row transactions,
secondary-index maintenance, recovery to the last committed transaction)
match what Memex's servlets and daemons rely on.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right, insort
from contextlib import ExitStack
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import (
    DuplicateKey,
    NoSuchColumn,
    NoSuchTable,
    SchemaError,
    TransactionError,
)
from ..locks import RWLock
from ..obs import MetricsRegistry, current_traceparent, null_registry
from .codec import Codec, get_codec
from .wal import WriteAheadLog

Row = dict[str, Any]

_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "json": (dict, list, str, int, float, bool, type(None)),
}


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: str = "str"
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise SchemaError(f"unknown column type {self.type!r}")

    def check(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if self.type == "bool" and isinstance(value, int) and not isinstance(value, bool):
            raise SchemaError(f"column {self.name!r} expects bool, got int")
        if not isinstance(value, _TYPES[self.type]):
            raise SchemaError(
                f"column {self.name!r} expects {self.type}, got {type(value).__name__}"
            )


@dataclass
class TableSchema:
    """Schema: ordered columns, a primary key, and named secondary indexes."""

    name: str
    columns: Sequence[Column]
    primary_key: str
    indexes: Sequence[str] = field(default_factory=tuple)
    unique: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        for col in (self.primary_key, *self.indexes, *self.unique):
            if col not in names:
                raise NoSuchColumn(f"{self.name}.{col}")
        self._by_name = {c.name: c for c in self.columns}

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise NoSuchColumn(f"{self.name}.{name}") from None

    def validate(self, row: Row) -> Row:
        """Check a row against the schema, filling absent nullables with None."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        out: Row = {}
        for col in self.columns:
            value = row.get(col.name)
            col.check(value)
            out[col.name] = value
        return out


class _OrderedIndex:
    """Sorted (value, pk) pairs supporting range scans. None values excluded."""

    def __init__(self) -> None:
        self._entries: list[tuple[Any, Any]] = []

    def add(self, value: Any, pk: Any) -> None:
        if value is not None:
            insort(self._entries, (value, pk))

    def remove(self, value: Any, pk: Any) -> None:
        if value is None:
            return
        i = bisect_left(self._entries, (value, pk))
        if i < len(self._entries) and self._entries[i] == (value, pk):
            del self._entries[i]

    def range(self, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        """Primary keys with ``lo <= value <= hi`` (either bound optional)."""
        start = 0 if lo is None else bisect_left(self._entries, (lo,))
        if hi is None:
            stop = len(self._entries)
        else:
            # (hi, +inf) — every tuple with value == hi sorts before this
            stop = bisect_right(self._entries, (hi, _INFINITY))
        for _, pk in self._entries[start:stop]:
            yield pk


class _Infinity:
    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True


_INFINITY = _Infinity()


class Table:
    """One heap table with its indexes.  Mutate through :class:`Database`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        # Per-table readers-writer lock (rank "relational" in
        # repro.locks.LOCK_ORDER).  Reads snapshot row copies under the
        # read side and filter/sort outside it, so user predicates never
        # run while the lock is held; commits take the write side of every
        # involved table in sorted-name order (the "table group").
        self._rw = RWLock()
        self._rows: dict[Any, Row] = {}
        self._hash: dict[str, dict[Any, set[Any]]] = {
            col: {} for col in {*schema.indexes, *schema.unique}
        }
        self._ordered: dict[str, _OrderedIndex] = {
            col: _OrderedIndex() for col in schema.indexes
        }

    # -- internal mutation (called by Database under a transaction) ---------

    def _insert(self, row: Row) -> None:
        row = self.schema.validate(row)
        pk = row[self.schema.primary_key]
        if pk is None:
            raise SchemaError(f"{self.schema.name}: primary key may not be NULL")
        if pk in self._rows:
            raise DuplicateKey(f"{self.schema.name}.{self.schema.primary_key}={pk!r}")
        for col in self.schema.unique:
            value = row[col]
            if value is not None and self._hash[col].get(value):
                raise DuplicateKey(f"{self.schema.name}.{col}={value!r}")
        self._rows[pk] = row
        self._index_add(pk, row)

    def _delete(self, pk: Any) -> Row:
        row = self._rows.pop(pk)
        self._index_remove(pk, row)
        return row

    def _update(self, pk: Any, changes: Row) -> Row:
        old = self._rows[pk]
        new = dict(old)
        new.update(changes)
        new = self.schema.validate(new)
        if new[self.schema.primary_key] != pk:
            raise SchemaError(f"{self.schema.name}: primary key is immutable")
        for col in self.schema.unique:
            value = new[col]
            if value is not None and value != old[col]:
                owners = self._hash[col].get(value, set())
                if owners - {pk}:
                    raise DuplicateKey(f"{self.schema.name}.{col}={value!r}")
        self._index_remove(pk, old)
        self._rows[pk] = new
        self._index_add(pk, new)
        return old

    def _index_add(self, pk: Any, row: Row) -> None:
        for col, buckets in self._hash.items():
            buckets.setdefault(row[col], set()).add(pk)
        for col, idx in self._ordered.items():
            idx.add(row[col], pk)

    def _index_remove(self, pk: Any, row: Row) -> None:
        for col, buckets in self._hash.items():
            bucket = buckets.get(row[col])
            if bucket is not None:
                bucket.discard(pk)
                if not bucket:
                    del buckets[row[col]]
        for col, idx in self._ordered.items():
            idx.remove(row[col], pk)

    # -- reads ----------------------------------------------------------------

    def get(self, pk: Any) -> Row | None:
        """Primary-key point lookup; returns a copy or None."""
        with self._rw.read():
            row = self._rows.get(pk)
            return dict(row) if row is not None else None

    def __len__(self) -> int:
        with self._rw.read():
            return len(self._rows)

    def __contains__(self, pk: Any) -> bool:
        with self._rw.read():
            return pk in self._rows

    def scan(self) -> Iterator[Row]:
        """Full scan; yields row copies (a snapshot taken at first next())."""
        with self._rw.read():
            snapshot = [dict(row) for row in self._rows.values()]
        yield from snapshot

    def select(
        self,
        where: Row | Callable[[Row], bool] | None = None,
        *,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[Row]:
        """Filtered select.

        *where* is either a dict of equality constraints (index-accelerated
        when a constrained column is indexed) or an arbitrary predicate.
        """
        # Copy the candidates under the read lock, then filter and sort
        # outside it so arbitrary predicates can themselves query tables.
        with self._rw.read():
            rows = [dict(r) for r in self._candidates(where)]
        if isinstance(where, dict):
            rows = [r for r in rows if all(r.get(k) == v for k, v in where.items())]
        elif callable(where):
            rows = [r for r in rows if where(r)]
        if order_by is not None:
            self.schema.column(order_by)
            rows.sort(key=lambda r: (r[order_by] is None, r[order_by]), reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        return rows

    def _candidates(self, where: Row | Callable[[Row], bool] | None) -> list[Row]:
        if isinstance(where, dict):
            for col in where:
                self.schema.column(col)
            if self.schema.primary_key in where:
                row = self._rows.get(where[self.schema.primary_key])
                return [row] if row is not None else []
            for col in where:
                if col in self._hash:
                    pks = self._hash[col].get(where[col], set())
                    return [self._rows[pk] for pk in pks]
        return list(self._rows.values())

    def range(self, column: str, lo: Any = None, hi: Any = None) -> list[Row]:
        """Index range scan over ``lo <= column <= hi`` (inclusive bounds)."""
        with self._rw.read():
            if column not in self._ordered:
                self.schema.column(column)
                rows = [
                    dict(r) for r in self._rows.values()
                    if r[column] is not None
                    and (lo is None or r[column] >= lo)
                    and (hi is None or r[column] <= hi)
                ]
                rows.sort(key=lambda r: r[column])
                return rows
            return [dict(self._rows[pk]) for pk in self._ordered[column].range(lo, hi)]

    def count(self, where: Row | Callable[[Row], bool] | None = None) -> int:
        if where is None:
            return len(self)
        return len(self.select(where))

    def aggregate(
        self,
        group_by: str,
        column: str | None = None,
        func: str = "count",
        where: Row | Callable[[Row], bool] | None = None,
    ) -> dict[Any, float]:
        """Group rows by *group_by* and aggregate *column* with *func*.

        ``func`` is one of ``count``, ``sum``, ``avg``, ``min``, ``max``.
        """
        self.schema.column(group_by)
        if func != "count":
            if column is None:
                raise SchemaError(f"aggregate {func!r} needs a column")
            self.schema.column(column)
        groups: dict[Any, list[Any]] = {}
        for row in self.select(where):
            groups.setdefault(row[group_by], []).append(
                1 if func == "count" else row[column]
            )
        reducers: dict[str, Callable[[list[Any]], float]] = {
            "count": len,
            "sum": sum,
            "avg": lambda xs: sum(xs) / len(xs),
            "min": min,
            "max": max,
        }
        if func not in reducers:
            raise SchemaError(f"unknown aggregate {func!r}")
        return {key: reducers[func](values) for key, values in groups.items()}


class Transaction:
    """Staged mutations applied atomically at :meth:`commit`.

    Reads inside a transaction see the *pre-transaction* state (the engine
    stages writes rather than applying them eagerly); this matches the
    read-committed discipline Memex's servlets use and keeps abort trivial.
    """

    def __init__(self, db: "Database", txn_id: int) -> None:
        self._db = db
        self.txn_id = txn_id
        self._ops: list[tuple[str, str, Any, Any]] = []  # op, table, pk, payload
        self._state = "active"

    def _check_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction is {self._state}")

    def insert(self, table: str, row: Row) -> None:
        self._check_active()
        self._db._table(table)  # existence check
        self._ops.append(("insert", table, None, dict(row)))

    def insert_many(self, table: str, rows: Iterable[Row]) -> int:
        """Stage many inserts into one table; returns the count staged.

        The whole transaction still commits as one WAL record, so this is
        the relational leg of the batch-ingest group commit.
        """
        self._check_active()
        self._db._table(table)
        n = 0
        for row in rows:
            self._ops.append(("insert", table, None, dict(row)))
            n += 1
        return n

    def update(self, table: str, pk: Any, changes: Row) -> None:
        self._check_active()
        self._db._table(table)
        self._ops.append(("update", table, pk, dict(changes)))

    def delete(self, table: str, pk: Any) -> None:
        self._check_active()
        self._db._table(table)
        self._ops.append(("delete", table, pk, None))

    def commit(self) -> None:
        self._check_active()
        self._db._commit(self)
        self._state = "committed"

    def abort(self) -> None:
        self._check_active()
        self._ops.clear()
        self._state = "aborted"

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: type | None, *exc: object) -> None:
        if self._state != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class Database:
    """A collection of tables with transactions and optional persistence.

    With ``path=None`` the database is purely in-memory.  With a path, every
    committed transaction (and every DDL statement) is logged to a
    write-ahead log; reopening the same path replays the log, recovering all
    committed work and discarding any uncommitted tail.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        sync: bool = False,
        metrics: MetricsRegistry | None = None,
        codec: str | Codec | None = None,
    ) -> None:
        self.codec = get_codec(codec)
        self._tables: dict[str, Table] = {}
        self._log: WriteAheadLog | None = None
        self._next_txn = 1
        self._recovering = False
        # Guards the table catalog and the transaction-id sequence; same
        # "relational" rank as the per-table _rw locks (never nested with
        # them held).
        self._catalog_lock = threading.RLock()
        m = metrics if metrics is not None else null_registry()
        self._n_commits = 0
        m.counter_func("storage.relational.commits", lambda: self._n_commits)
        if path is not None:
            self._log = WriteAheadLog(path, sync=sync, metrics=m)
            self._recover()

    # -- DDL -------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column | tuple[str, str] | str],
        primary_key: str,
        *,
        indexes: Sequence[str] = (),
        unique: Sequence[str] = (),
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table.  Columns may be Column objects, (name, type)
        tuples, or bare names (defaulting to type ``str``)."""
        with self._catalog_lock:
            if name in self._tables:
                if if_not_exists:
                    return self._tables[name]
                raise SchemaError(f"table {name!r} already exists")
            cols = [self._as_column(c) for c in columns]
            schema = TableSchema(name, cols, primary_key, tuple(indexes), tuple(unique))
            self._tables[name] = Table(schema)
            self._log_ddl(
                "create_table",
                {
                    "name": name,
                    "columns": [(c.name, c.type, c.nullable) for c in cols],
                    "primary_key": primary_key,
                    "indexes": list(indexes),
                    "unique": list(unique),
                },
            )
            return self._tables[name]

    @staticmethod
    def _as_column(spec: Column | tuple[str, str] | str) -> Column:
        if isinstance(spec, Column):
            return spec
        if isinstance(spec, tuple):
            return Column(spec[0], spec[1])
        return Column(spec)

    def drop_table(self, name: str) -> None:
        with self._catalog_lock:
            self._table(name)
            del self._tables[name]
            self._log_ddl("drop_table", {"name": name})

    def table(self, name: str) -> Table:
        """Read handle on a table."""
        return self._table(name)

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTable(name) from None

    def tables(self) -> list[str]:
        with self._catalog_lock:
            return sorted(self._tables)

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        with self._catalog_lock:
            txn_id = self._next_txn
            self._next_txn += 1
        return Transaction(self, txn_id)

    def _commit(self, txn: Transaction) -> None:
        # Serialize commits per table-group: take the write lock of every
        # involved table in sorted-name order (deadlock-free by global
        # ordering); commits on disjoint table groups run concurrently
        # with each other and with readers of other tables.
        involved = sorted({tname for _, tname, _, _ in txn._ops})
        with ExitStack() as stack:
            for tname in involved:
                stack.enter_context(self._table(tname)._rw.write())
            self._apply_ops(txn)

    def _apply_ops(self, txn: Transaction) -> None:
        # Apply with rollback-on-failure so a constraint violation midway
        # leaves the database unchanged (atomicity).
        applied: list[tuple[str, str, Any, Row | None]] = []
        try:
            for op, tname, pk, payload in txn._ops:
                table = self._table(tname)
                if op == "insert":
                    table._insert(payload)
                    applied.append(("insert", tname, payload[table.schema.primary_key], None))
                elif op == "update":
                    old = table._update(pk, payload)
                    applied.append(("update", tname, pk, old))
                else:
                    old = table._delete(pk)
                    applied.append(("delete", tname, pk, old))
        except Exception:
            for op, tname, pk, old in reversed(applied):
                table = self._table(tname)
                if op == "insert":
                    table._delete(pk)
                elif op == "update":
                    assert old is not None
                    table._index_remove(pk, table._rows[pk])
                    table._rows[pk] = old
                    table._index_add(pk, old)
                else:
                    assert old is not None
                    table._insert(old)
            raise
        if txn._ops:
            self._n_commits += 1
        if self._log is not None and not self._recovering and txn._ops:
            record = {"kind": "txn", "ops": [
                [op, tname, self._jsonable(pk), payload]
                for op, tname, pk, payload in txn._ops
            ]}
            # Stamp the ambient trace context (if a request span is
            # active) so a WAL record is attributable to the request that
            # wrote it.  Recovery ignores unknown keys, so old readers
            # and old WALs are both unaffected.
            trace = current_traceparent()
            if trace is not None:
                record["trace"] = trace
            self._log.append(self.codec.encode(record))

    @staticmethod
    def _jsonable(value: Any) -> Any:
        return value

    # -- convenience auto-commit operations ----------------------------------------

    def insert(self, table: str, row: Row) -> None:
        """Insert one row in its own transaction."""
        with self.begin() as txn:
            txn.insert(table, row)

    def insert_many(self, table: str, rows: Iterable[Row]) -> int:
        """Insert many rows atomically; returns the count."""
        n = 0
        with self.begin() as txn:
            for row in rows:
                txn.insert(table, row)
                n += 1
        return n

    def update(self, table: str, pk: Any, changes: Row) -> None:
        with self.begin() as txn:
            txn.update(table, pk, changes)

    def delete(self, table: str, pk: Any) -> None:
        with self.begin() as txn:
            txn.delete(table, pk)

    def upsert(self, table: str, row: Row) -> None:
        """Insert, or update in place when the primary key already exists.

        Atomic under concurrency: the existence check and the write happen
        under the table's write lock (the nested commit re-enters it), so
        two racing upserts of a fresh key cannot both choose insert.
        """
        t = self._table(table)
        with t._rw.write():
            pk = row.get(t.schema.primary_key)
            if pk is not None and pk in t._rows:
                changes = {k: v for k, v in row.items() if k != t.schema.primary_key}
                self.update(table, pk, changes)
            else:
                self.insert(table, row)

    # -- joins ------------------------------------------------------------------------

    def join(
        self,
        left: str,
        right: str,
        *,
        on: tuple[str, str],
        where: Callable[[Row, Row], bool] | None = None,
    ) -> list[tuple[Row, Row]]:
        """Hash equi-join of two tables on ``left.on[0] == right.on[1]``."""
        lt, rt = self._table(left), self._table(right)
        lcol, rcol = on
        lt.schema.column(lcol)
        rt.schema.column(rcol)
        buckets: dict[Any, list[Row]] = {}
        for row in rt.scan():
            buckets.setdefault(row[rcol], []).append(row)
        out: list[tuple[Row, Row]] = []
        for lrow in lt.scan():
            for rrow in buckets.get(lrow[lcol], ()):
                if where is None or where(lrow, rrow):
                    out.append((lrow, rrow))
        return out

    # -- persistence ---------------------------------------------------------------------

    def _log_ddl(self, kind: str, payload: dict[str, Any]) -> None:
        if self._log is not None and not self._recovering:
            record = {"kind": kind, **payload}
            self._log.append(self.codec.encode(record))

    def _recover(self) -> None:
        assert self._log is not None
        self._recovering = True
        try:
            for raw in self._log.replay():
                # codec.decode sniffs the magic byte, so a catalog WAL
                # written under either codec replays under any codec.
                record = self.codec.decode(raw)
                kind = record.pop("kind")
                if kind == "create_table":
                    self.create_table(
                        record["name"],
                        [Column(n, t, nul) for n, t, nul in record["columns"]],
                        record["primary_key"],
                        indexes=record["indexes"],
                        unique=record["unique"],
                    )
                elif kind == "drop_table":
                    self.drop_table(record["name"])
                elif kind == "txn":
                    with self.begin() as txn:
                        for op, tname, pk, payload in record["ops"]:
                            if op == "insert":
                                txn.insert(tname, payload)
                            elif op == "update":
                                txn.update(tname, pk, payload)
                            else:
                                txn.delete(tname, pk)
        finally:
            self._recovering = False

    def close(self) -> None:
        if self._log is not None:
            self._log.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
