"""Write-ahead log with checksummed, length-prefixed records.

The relational engine and the key-value store both persist through this
log format.  Each record on disk is::

    +----------+----------+----------------+
    | crc32    | length   | payload        |
    | 4 bytes  | 4 bytes  | `length` bytes |
    +----------+----------+----------------+

``crc32`` covers the payload only.  A torn final record (partial write at
crash) is detected by a short read or checksum mismatch and the log is
truncated to the last good record on recovery — exactly the behaviour the
paper needs from "the server recovers from network and programming errors
quickly, even if it has to discard a few client events" (§3).
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..errors import CorruptLog, StoreClosed
from ..obs import MetricsRegistry, null_registry

_HEADER = struct.Struct("<II")  # crc32, payload length
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_record(payload: bytes) -> bytes:
    """Frame *payload* as a single log record."""
    if len(payload) > MAX_RECORD_BYTES:
        raise CorruptLog(f"record of {len(payload)} bytes exceeds maximum")
    return _HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF, len(payload)) + payload


class WriteAheadLog:
    """Append-only log of byte records with crash recovery.

    Parameters
    ----------
    path:
        File the log lives in.  Created (with parents) if missing.
    sync:
        When true, ``fsync`` after every :meth:`append`.  Tests and
        benchmarks leave this off; durability-sensitive callers turn it on.
    metrics:
        Observability registry; records appends, appended bytes, and
        fsyncs under ``storage.wal.*``.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        sync: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        m = metrics if metrics is not None else null_registry()
        self._n_appends = 0
        self._n_bytes = 0
        self._n_fsyncs = 0
        m.counter_func("storage.wal.appends", lambda: self._n_appends)
        m.counter_func("storage.wal.appended_bytes", lambda: self._n_bytes)
        m.counter_func("storage.wal.fsyncs", lambda: self._n_fsyncs)
        self._recovered_bytes = self._scan_and_truncate()
        self._fh = open(self.path, "ab")
        self._closed = False
        # Single-writer lock: appends, compaction, and flushes serialize
        # here so records never interleave mid-frame.  Reentrant because
        # compaction flushes while already holding it.
        self._wal_lock = threading.RLock()

    # -- recovery -----------------------------------------------------------

    def _scan_and_truncate(self) -> int:
        """Find the byte offset of the last intact record and truncate there."""
        if not self.path.exists():
            return 0
        good = 0
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                crc, length = _HEADER.unpack(header)
                if length > MAX_RECORD_BYTES:
                    break
                payload = fh.read(length)
                if len(payload) < length:
                    break
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    break
                good = fh.tell()
        size = self.path.stat().st_size
        if size > good:
            with open(self.path, "r+b") as fh:
                fh.truncate(good)
        return good

    # -- primitive operations -----------------------------------------------

    def append(self, payload: bytes) -> int:
        """Append one record; returns the offset it begins at."""
        record = encode_record(payload)
        with self._wal_lock:
            if self._closed:
                raise StoreClosed(f"log {self.path} is closed")
            offset = self._fh.tell()
            self._fh.write(record)
            self._fh.flush()
            self._n_appends += 1
            self._n_bytes += len(record)
            if self.sync:
                os.fsync(self._fh.fileno())
                self._n_fsyncs += 1
        return offset

    def append_many(self, payloads: Iterable[bytes]) -> list[int]:
        """Group commit: append every payload as its own record with ONE
        buffered write and (when ``sync``) ONE fsync for the whole batch.

        Records stay individually checksummed and length-prefixed, so
        torn-tail recovery still truncates to the last intact *record* —
        a crash mid-batch keeps the batch's unbroken prefix.  Returns the
        starting offset of each record, in order.
        """
        records = [encode_record(payload) for payload in payloads]
        with self._wal_lock:
            if self._closed:
                raise StoreClosed(f"log {self.path} is closed")
            offsets: list[int] = []
            offset = self._fh.tell()
            for record in records:
                offsets.append(offset)
                offset += len(record)
            if not records:
                return offsets
            buffer = b"".join(records)
            self._fh.write(buffer)
            self._fh.flush()
            self._n_appends += len(records)
            self._n_bytes += len(buffer)
            if self.sync:
                os.fsync(self._fh.fileno())
                self._n_fsyncs += 1
        return offsets

    def replay(self) -> Iterator[bytes]:
        """Yield every intact record payload, in append order.

        Safe to call while the log is open for appending; it reads a
        snapshot of the bytes present when iteration starts.
        """
        with self._wal_lock:
            self._fh.flush()
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                crc, length = _HEADER.unpack(header)
                if length > MAX_RECORD_BYTES:
                    raise CorruptLog(f"{self.path}: record length {length} too large")
                payload = fh.read(length)
                if len(payload) < length:
                    return
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    raise CorruptLog(f"{self.path}: checksum mismatch mid-log")
                yield payload

    def rewrite(self, payloads: Iterator[bytes] | list[bytes]) -> None:
        """Atomically replace the log contents (used by compaction).

        Writes to a sibling temp file then renames over the original, so a
        crash mid-compaction leaves either the old or the new log intact.
        """
        with self._wal_lock:
            if self._closed:
                raise StoreClosed(f"log {self.path} is closed")
            tmp = self.path.with_suffix(self.path.suffix + ".compact")
            with open(tmp, "wb") as fh:
                for payload in payloads:
                    fh.write(encode_record(payload))
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = open(self.path, "ab")

    def size_bytes(self) -> int:
        """Current log size in bytes (including unflushed buffer)."""
        with self._wal_lock:
            self._fh.flush()
            return self.path.stat().st_size

    def close(self) -> None:
        with self._wal_lock:
            if not self._closed:
                self._fh.flush()
                self._fh.close()
                self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
