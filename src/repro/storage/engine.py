"""The storage-backend seam: one protocol, many engines.

The paper's server owns its term-level store as an implementation detail
behind one access pattern (ordered keys, prefix scans, durable writes);
this module makes that pattern a formal :class:`StorageEngine` protocol
and a name-keyed factory, so the rest of the system — the repository,
the inverted index, the server CLI — never constructs a concrete engine
class.  Two engines register here:

``btree``
    :class:`~repro.storage.kvstore.KVStore`, the original Berkeley-DB
    stand-in: one log replayed into an in-memory sorted index.  Simple,
    and the fastest choice while the working set fits in RAM.

``lsm``
    :class:`~repro.storage.lsm.LSMStore`: an in-memory memtable over
    sorted immutable segment files with sparse indexes and bloom
    filters, compacted in the background.  Ingest cost stays flat as the
    archive grows, and reopening does not replay the whole history.

Both engines speak the same protocol, accept the same injected
:class:`~repro.storage.codec.Codec`, and run the same test suite — the
"same-suite guarantee" the roadmap asks for.  Out-of-package code must
come through :func:`open_engine` (CI's ``check_storage_api.py`` enforces
the boundary).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Protocol, runtime_checkable

from ..obs import MetricsRegistry
from .codec import Codec, get_codec


def prefix_successor(prefix: bytes) -> bytes | None:
    """The smallest byte string greater than every key with *prefix*.

    Strips any trailing ``0xFF`` run and increments the last remaining
    byte (``b"a\\xff"`` → ``b"b"``), so a prefix ending in ``0xFF`` still
    yields a finite cursor upper bound.  Returns ``None`` only when no
    successor exists (empty or all-``0xFF`` prefix — every later key is
    a continuation, so the scan must run to the end).
    """
    trimmed = prefix.rstrip(b"\xff")
    if not trimmed:
        return None
    return trimmed[:-1] + bytes([trimmed[-1] + 1])


@runtime_checkable
class StorageEngine(Protocol):
    """What every term-level store must provide.

    Keys and values are byte strings; iteration is always in key order.
    Engines expose their record codec as :attr:`codec` (consumers that
    serialize structured values use the store's codec so one store stays
    internally consistent) and publish ``storage.<engine>.*`` metrics
    through the registry handed to :func:`open_engine`.
    """

    #: Factory name the engine registered under (``"btree"``, ``"lsm"``).
    engine_name: str
    #: Record codec injected at construction (see :mod:`.codec`).
    codec: Codec

    # -- mutation -----------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None: ...
    def put_many(self, items: Iterable[tuple[bytes, bytes]]) -> int: ...
    def delete(self, key: bytes) -> None: ...
    def discard(self, key: bytes) -> bool: ...

    # -- lookup -------------------------------------------------------------
    def get(self, key: bytes, default: bytes | None = None) -> bytes | None: ...
    def __contains__(self, key: bytes) -> bool: ...
    def __getitem__(self, key: bytes) -> bytes: ...
    def __setitem__(self, key: bytes, value: bytes) -> None: ...
    def __len__(self) -> int: ...

    # -- ordered scans ------------------------------------------------------
    def cursor(
        self, start: bytes | None = None, end: bytes | None = None,
    ) -> Iterator[tuple[bytes, bytes]]: ...
    def prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]: ...
    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]: ...
    def keys(self) -> list[bytes]: ...

    # -- maintenance --------------------------------------------------------
    def compact(self) -> None: ...
    def stats(self) -> dict: ...
    def close(self) -> None: ...


#: Engine name -> default on-disk basename under a repository root.  The
#: btree engine keeps its historical file name so existing data
#: directories reopen unchanged; the LSM engine owns a directory.
ENGINE_BASENAMES: dict[str, str] = {
    "btree": "terms.kv",
    "lsm": "terms.lsm",
}


def engine_names() -> tuple[str, ...]:
    """The registered engine names, factory-selectable order."""
    return tuple(sorted(ENGINE_BASENAMES))


def engine_store_path(root: str | Path, name: str) -> Path:
    """Default location of engine *name*'s store under *root*."""
    if name not in ENGINE_BASENAMES:
        raise ValueError(
            f"unknown storage engine {name!r}; choose from {engine_names()}"
        )
    return Path(root) / ENGINE_BASENAMES[name]


def open_engine(
    name: str,
    path: str | Path | None = None,
    *,
    sync: bool = False,
    metrics: MetricsRegistry | None = None,
    codec: str | Codec | None = None,
    **engine_kwargs,
) -> StorageEngine:
    """Open a storage engine by *name* — the only supported constructor
    for code outside :mod:`repro.storage`.

    Parameters
    ----------
    name:
        ``"btree"`` or ``"lsm"``.
    path:
        Backing path (a file for btree, a directory for lsm), or ``None``
        for a purely in-memory store.
    sync:
        fsync on commit (threaded into the engine's write-ahead log).
    metrics:
        Observability registry for the engine's ``storage.*`` metrics.
    codec:
        Record codec name or instance (default ``"json"``); exposed by
        the returned engine as ``.codec``.
    engine_kwargs:
        Engine-specific tuning (e.g. ``compact_garbage_ratio`` for
        btree; ``memtable_bytes``/``max_segments`` for lsm).

    Both engines satisfy the same protocol and the same tests; an
    in-memory open is enough to exercise the whole surface:

    >>> store = open_engine("btree")
    >>> store.engine_name
    'btree'
    >>> store[b"k1"] = b"v1"
    >>> store.put_many([(b"k2", b"v2"), (b"k3", b"v3")])
    2
    >>> store.get(b"k2"), store.get(b"missing", b"?")
    (b'v2', b'?')
    >>> [k for k, _ in store.scan_prefix(b"k")]
    [b'k1', b'k2', b'k3']
    >>> store.close()
    """
    # Imported lazily: the engine modules import this module's Namespace
    # and prefix helper, so the registry resolves at call time.
    if name == "btree":
        from .kvstore import KVStore

        return KVStore(
            path, sync=sync, metrics=metrics,
            codec=get_codec(codec), **engine_kwargs,
        )
    if name == "lsm":
        from .lsm import LSMStore

        return LSMStore(
            path, sync=sync, metrics=metrics,
            codec=get_codec(codec), **engine_kwargs,
        )
    raise ValueError(
        f"unknown storage engine {name!r}; choose from {engine_names()}"
    )


class Namespace:
    """A keyspace slice of a :class:`StorageEngine`, like a BDB sub-database.

    Keys are transparently prefixed with ``name + 0x00`` so multiple
    logical tables (term stats, postings, document metadata, ...) can share
    one physical store, mirroring how Memex packs several indices into
    Berkeley DB.  Works over any engine the factory returns.
    """

    SEPARATOR = b"\x00"

    def __init__(self, store: StorageEngine, name: str) -> None:
        if Namespace.SEPARATOR.decode("latin-1") in name:
            raise ValueError("namespace name must not contain NUL")
        self.store = store
        self.name = name
        self._prefix = name.encode("utf-8") + Namespace.SEPARATOR

    def _wrap(self, key: bytes) -> bytes:
        return self._prefix + key

    def put(self, key: bytes, value: bytes) -> None:
        self.store.put(self._wrap(key), value)

    def put_many(self, items: Iterable[tuple[bytes, bytes]]) -> int:
        return self.store.put_many(
            (self._wrap(key), value) for key, value in items
        )

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        return self.store.get(self._wrap(key), default)

    def delete(self, key: bytes) -> None:
        self.store.delete(self._wrap(key))

    def discard(self, key: bytes) -> bool:
        return self.store.discard(self._wrap(key))

    def __contains__(self, key: bytes) -> bool:
        return self._wrap(key) in self.store

    def __getitem__(self, key: bytes) -> bytes:
        return self.store[self._wrap(key)]

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All pairs in this namespace, unwrapped, in key order."""
        plen = len(self._prefix)
        for key, value in self.store.prefix(self._prefix):
            yield key[plen:], value

    def prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        plen = len(self._prefix)
        for key, value in self.store.prefix(self._prefix + prefix):
            yield key[plen:], value

    def clear(self) -> int:
        """Delete every key in the namespace; returns how many."""
        doomed = [key for key, _ in self.items()]
        for key in doomed:
            self.delete(key)
        return len(doomed)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())
