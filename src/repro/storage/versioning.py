"""Loosely-consistent versioning between the RDBMS and the text indices.

Section 3: "maintaining some form of coherence between the metadata in the
RDBMS and several text-related indices in Berkeley DB required us to
implement a loosely-consistent versioning system on top of the RDBMS, with
a single producer (crawler) and several consumers (indexer and statistical
analyzers)".

The protocol reproduced here:

* The **producer** (crawler) opens numbered versions, adds items (page
  URLs it has fetched and stored), and **publishes** each version when its
  contents are fully durable in both stores.
* Each **consumer** (indexer, classifier, theme analyzer, ...) registers by
  name and repeatedly calls :meth:`VersionCoordinator.poll`, which hands it
  every published-but-unacknowledged item along with the version watermark.
  While a consumer holds a poll result, those versions are *pinned*.
* After processing, the consumer **acks** the watermark.  Items below the
  minimum acked watermark of all consumers are reclaimable; :meth:`gc`
  drops them.

Consumers therefore see *consistent prefixes* of the producer's history —
never a half-published version — but may lag arbitrarily, which is exactly
the "loose" coherence the paper describes: UI reads hit the RDBMS
immediately, while mined results catch up asynchronously.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from ..errors import StaleSnapshot, VersioningError
from ..obs import Logger, MetricsRegistry, null_logger, null_registry


@dataclass
class _Version:
    number: int
    items: list[Any] = field(default_factory=list)
    published: bool = False


class VersionCoordinator:
    """Single-producer / multi-consumer version coordination.

    Items are opaque to the coordinator (Memex uses page URLs).  The
    coordinator tracks, per consumer, the highest version fully processed,
    and exposes staleness metrics the benchmarks report.
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        log: Logger | None = None,
    ) -> None:
        # One lock ("versioning" rank in repro.locks.LOCK_ORDER) over
        # all coordinator state: version maps, watermarks, the open
        # version, and the GC floor move together, so producer publishes,
        # consumer polls/acks, and gc serialize here.  Reentrant because
        # produce() composes the locked primitives.
        self._versions_lock = threading.RLock()
        self._versions: dict[int, _Version] = {}
        self._open: _Version | None = None
        self.log = log if log is not None else null_logger("versioning")
        # Per-item origin traceparents (best-effort trace propagation to
        # consumers); purged with their versions at gc.
        self._origins: dict[Any, str] = {}
        self._next_number = 1
        self._published_high = 0     # highest published version number
        self._gc_floor = 0           # versions <= this have been reclaimed
        self._consumers: dict[str, int] = {}  # name -> highest acked version
        self._metrics = metrics if metrics is not None else null_registry()
        self._m_publishes = self._metrics.counter("storage.versioning.publishes")
        self._m_aborts = self._metrics.counter("storage.versioning.aborts")
        self._m_items = self._metrics.counter("storage.versioning.items")
        self._m_gc_reclaimed = self._metrics.counter("storage.versioning.gc_reclaimed")
        self._g_live = self._metrics.gauge("storage.versioning.live_versions")
        # Per-consumer instruments, created lazily in register_consumer:
        # the lag gauge is the headline number for the paper's "loose
        # coherence" — how many published versions a consumer is behind.
        self._lag_gauges: dict[str, Any] = {}
        self._poll_counters: dict[str, Any] = {}
        self._ack_counters: dict[str, Any] = {}

    def _update_lag(self, name: str) -> None:
        with self._versions_lock:
            self._lag_gauges[name].set(
                self._published_high - self._consumers[name])

    # -- producer side -----------------------------------------------------------

    def open_version(self) -> int:
        """Begin a new version; only one may be open at a time."""
        with self._versions_lock:
            if self._open is not None:
                raise VersioningError(
                    f"version {self._open.number} is still open (single producer)"
                )
            v = _Version(self._next_number)
            self._next_number += 1
            self._versions[v.number] = v
            self._open = v
            return v.number

    def add_item(self, item: Any, *, origin: str | None = None) -> None:
        """Attach an item to the currently open version.

        ``origin`` optionally records the traceparent of the request that
        produced the item; consumers read it back via :meth:`origin` to
        link their spans to the originating trace.
        """
        with self._versions_lock:
            if self._open is None:
                raise VersioningError("no version is open")
            self._open.items.append(item)
            if origin is not None:
                self._origins[item] = origin
            self._m_items.inc()

    def publish(self) -> int:
        """Publish the open version, making it visible to consumers."""
        with self._versions_lock:
            if self._open is None:
                raise VersioningError("no version is open")
            self._open.published = True
            number = self._open.number
            items = len(self._open.items)
            self._published_high = number
            self._open = None
            self._m_publishes.inc()
            self._g_live.set(len(self._versions))
            for name in self._consumers:
                self._update_lag(name)
            self.log.info("version_published", version=number, items=items)
            return number

    def abort_version(self) -> None:
        """Discard the open version (producer crash / error path)."""
        with self._versions_lock:
            if self._open is None:
                raise VersioningError("no version is open")
            for item in self._open.items:
                self._origins.pop(item, None)
            number = self._open.number
            del self._versions[self._open.number]
            self._open = None
            self._m_aborts.inc()
            self._g_live.set(len(self._versions))
            self.log.warn("version_aborted", version=number)

    def origin(self, item: Any) -> str | None:
        """The origin traceparent stamped on *item*, if still retained."""
        with self._versions_lock:
            return self._origins.get(item)

    def produce(self, items: Iterable[Any]) -> int:
        """Convenience: open, fill, and publish a version in one call."""
        with self._versions_lock:
            self.open_version()
            for item in items:
                self.add_item(item)
            return self.publish()

    # -- consumer side ---------------------------------------------------------------

    def register_consumer(self, name: str) -> None:
        """Register a consumer; it starts at the current GC floor.

        Registering an existing consumer is a no-op, so daemons can call
        this idempotently on startup.
        """
        with self._versions_lock:
            if name not in self._consumers:
                self._consumers[name] = self._gc_floor
            if name not in self._lag_gauges:
                self._lag_gauges[name] = self._metrics.gauge(
                    "storage.versioning.lag", consumer=name,
                )
                self._poll_counters[name] = self._metrics.counter(
                    "storage.versioning.polls", consumer=name,
                )
                self._ack_counters[name] = self._metrics.counter(
                    "storage.versioning.acks", consumer=name,
                )
                self._update_lag(name)

    def poll(self, name: str) -> tuple[int, list[Any]]:
        """Return ``(watermark, items)`` newly published since the
        consumer's last ack.

        The watermark is the highest published version included; acking it
        marks everything up to it processed.  An empty poll returns the
        consumer's current watermark and no items.
        """
        with self._versions_lock:
            if name not in self._consumers:
                raise VersioningError(f"unknown consumer {name!r}")
            acked = self._consumers[name]
            if acked < self._gc_floor:
                raise StaleSnapshot(
                    f"consumer {name!r} acked {acked} but GC floor is {self._gc_floor}"
                )
            items: list[Any] = []
            for number in range(acked + 1, self._published_high + 1):
                v = self._versions.get(number)
                if v is not None and v.published:
                    items.extend(v.items)
            self._poll_counters[name].inc()
            return self._published_high, items

    def ack(self, name: str, watermark: int) -> None:
        """Acknowledge processing of everything up to *watermark*."""
        with self._versions_lock:
            if name not in self._consumers:
                raise VersioningError(f"unknown consumer {name!r}")
            if watermark > self._published_high:
                raise VersioningError(
                    f"cannot ack {watermark}: only {self._published_high} published"
                )
            if watermark < self._consumers[name]:
                raise VersioningError("watermark may not move backwards")
            self._consumers[name] = watermark
            self._ack_counters[name].inc()
            self._update_lag(name)

    # -- reclamation --------------------------------------------------------------------

    def gc(self) -> int:
        """Reclaim versions every consumer has acked; returns #reclaimed."""
        with self._versions_lock:
            if not self._consumers:
                return 0
            floor = min(self._consumers.values())
            reclaimed = 0
            for number in list(self._versions):
                v = self._versions[number]
                if v.published and number <= floor:
                    for item in v.items:
                        self._origins.pop(item, None)
                    del self._versions[number]
                    reclaimed += 1
            self._gc_floor = max(self._gc_floor, floor)
            if reclaimed:
                self._m_gc_reclaimed.inc(reclaimed)
            self._g_live.set(len(self._versions))
            return reclaimed

    # -- introspection ---------------------------------------------------------------------

    @property
    def published_version(self) -> int:
        """Highest published version number (0 before the first publish)."""
        return self._published_high

    def watermark(self, name: str) -> int:
        """Highest version *name* has acked.

        This is the consumer's consistent-snapshot position: everything it
        has processed is at or below this version.  The read-path caches
        fold watched consumers' watermarks into their validity tokens so a
        cached result is dropped the moment the consumer that feeds it
        (indexer, classifier) catches up past the entry's snapshot.

        Raises
        ------
        VersioningError
            If *name* was never registered.
        """
        with self._versions_lock:
            if name not in self._consumers:
                raise VersioningError(f"unknown consumer {name!r}")
            return self._consumers[name]

    def staleness(self, name: str) -> int:
        """How many published versions the consumer is behind."""
        with self._versions_lock:
            if name not in self._consumers:
                raise VersioningError(f"unknown consumer {name!r}")
            return self._published_high - self._consumers[name]

    def consumers(self) -> dict[str, int]:
        with self._versions_lock:
            return dict(self._consumers)

    def lags(self) -> dict[str, int]:
        """Per-consumer staleness: published versions not yet acked."""
        with self._versions_lock:
            return {
                name: self._published_high - acked
                for name, acked in self._consumers.items()
            }

    def live_versions(self) -> int:
        return len(self._versions)
