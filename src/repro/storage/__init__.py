"""Storage substrate: relational engine, key-value store, WAL, versioning.

See DESIGN.md §2-3.  The paper's server (§3) splits state between an RDBMS
(metadata) and Berkeley DB (term-level statistics), coordinated by a
loosely-consistent versioning layer; each of those has a module here.
"""

from .btree import BTree
from .kvstore import KVStore, Namespace
from .relational import Column, Database, Table, TableSchema, Transaction
from .repository import MemexRepository, Sequence
from .schema import (
    ARCHIVE_COMMUNITY,
    ARCHIVE_MODES,
    ARCHIVE_OFF,
    ARCHIVE_PRIVATE,
    ASSOC_BOOKMARK,
    ASSOC_CORRECTION,
    ASSOC_GUESS,
    COMMUNITY_OWNER,
    create_catalog,
)
from .versioning import VersionCoordinator
from .wal import WriteAheadLog

__all__ = [
    "ARCHIVE_COMMUNITY",
    "ARCHIVE_MODES",
    "ARCHIVE_OFF",
    "ARCHIVE_PRIVATE",
    "ASSOC_BOOKMARK",
    "ASSOC_CORRECTION",
    "ASSOC_GUESS",
    "BTree",
    "COMMUNITY_OWNER",
    "Column",
    "Database",
    "KVStore",
    "MemexRepository",
    "Namespace",
    "Sequence",
    "Table",
    "TableSchema",
    "Transaction",
    "VersionCoordinator",
    "WriteAheadLog",
    "create_catalog",
]
