"""Storage substrate: relational engine, pluggable KV engines, WAL, versioning.

See DESIGN.md §2-3 and §11.  The paper's server (§3) splits state between
an RDBMS (metadata) and Berkeley DB (term-level statistics), coordinated
by a loosely-consistent versioning layer; each of those has a module
here.  Term-level stores are opened through the :class:`StorageEngine`
factory (:func:`open_engine`) — ``btree`` is the original in-memory
sorted-index engine, ``lsm`` the disk-resident log-structured one — and
serialize records through an injected :class:`Codec`.
"""

from .btree import BTree
from .codec import BinaryCodec, Codec, JsonCodec, get_codec
from .engine import (
    Namespace,
    StorageEngine,
    engine_names,
    engine_store_path,
    open_engine,
    prefix_successor,
)
from .kvstore import KVStore
from .lsm import LSMMaintenanceDaemon, LSMStore
from .relational import Column, Database, Table, TableSchema, Transaction
from .repository import MemexRepository, Sequence
from .schema import (
    ARCHIVE_COMMUNITY,
    ARCHIVE_MODES,
    ARCHIVE_OFF,
    ARCHIVE_PRIVATE,
    ASSOC_BOOKMARK,
    ASSOC_CORRECTION,
    ASSOC_GUESS,
    COMMUNITY_OWNER,
    create_catalog,
)
from .versioning import VersionCoordinator
from .wal import WriteAheadLog

__all__ = [
    "ARCHIVE_COMMUNITY",
    "ARCHIVE_MODES",
    "ARCHIVE_OFF",
    "ARCHIVE_PRIVATE",
    "ASSOC_BOOKMARK",
    "ASSOC_CORRECTION",
    "ASSOC_GUESS",
    "BTree",
    "BinaryCodec",
    "COMMUNITY_OWNER",
    "Codec",
    "Column",
    "Database",
    "JsonCodec",
    "KVStore",
    "LSMMaintenanceDaemon",
    "LSMStore",
    "MemexRepository",
    "Namespace",
    "Sequence",
    "StorageEngine",
    "Table",
    "TableSchema",
    "Transaction",
    "VersionCoordinator",
    "WriteAheadLog",
    "create_catalog",
    "engine_names",
    "engine_store_path",
    "get_codec",
    "open_engine",
    "prefix_successor",
]
