"""The Memex catalog: relational schema for pages, links, users, and topics.

Section 3 of the paper: "a relational database (RDBMS) such as Oracle or
DB2 for managing metadata about pages, links, users, and topics".  This
module creates that catalog on our in-process engine and documents each
table's role.

Tables
------
``users``
    One row per registered surfer, with community membership and the
    default archive mode.
``pages``
    One row per distinct URL the community has touched: fetch status,
    title, content hash, and the version (epoch) at which the crawler
    last produced it.
``links``
    The hyperlink graph among known pages (directed edges).
``visits``
    The surf-trail fact table: one row per page visit event, carrying
    user, timestamp, session, referrer, archive mode and (once the
    classifier daemon has run) the inferred topic folder.
``folders``
    Every folder node of every user's personal topic tree, plus the
    community taxonomy (owner ``__community__``).
``folder_pages``
    Document-folder associations: deliberate bookmarks (``source =
    'bookmark'``), classifier guesses (``'guess'``), and user
    corrections (``'correction'``).
``themes``
    Discovered community themes with their taxonomy structure.
``covisits``
    The co-visitation associative index: one row per unordered page
    pair seen together inside a surf session (community-archived visits
    only), carrying the exponentially-decayed co-occurrence count and
    the time it was last reinforced (DESIGN.md §13).
"""

from __future__ import annotations

from .relational import Column, Database

# Owner id under which the community-level taxonomy is stored.
COMMUNITY_OWNER = "__community__"

# Archive modes from Figure 1: the user may surf without archiving,
# archive privately, or archive for community use.
ARCHIVE_OFF = "off"
ARCHIVE_PRIVATE = "private"
ARCHIVE_COMMUNITY = "community"
ARCHIVE_MODES = (ARCHIVE_OFF, ARCHIVE_PRIVATE, ARCHIVE_COMMUNITY)

# Provenance of a document-folder association.
ASSOC_BOOKMARK = "bookmark"      # deliberate user bookmark
ASSOC_GUESS = "guess"            # classifier daemon guess (shown as '?')
ASSOC_CORRECTION = "correction"  # user corrected/reinforced the classifier
ASSOC_SOURCES = (ASSOC_BOOKMARK, ASSOC_GUESS, ASSOC_CORRECTION)


def create_catalog(db: Database) -> None:
    """Create all Memex catalog tables (idempotent)."""
    db.create_table(
        "users",
        [
            Column("user_id"),
            Column("name"),
            Column("community", nullable=True),
            Column("archive_mode"),
            Column("created_at", "float"),
        ],
        primary_key="user_id",
        indexes=("community",),
        if_not_exists=True,
    )
    db.create_table(
        "pages",
        [
            Column("url"),
            Column("title", nullable=True),
            Column("fetched", "bool"),
            Column("content_hash", nullable=True),
            Column("first_seen", "float"),
            Column("last_seen", "float"),
            Column("produced_version", "int", nullable=True),
            Column("front_page", "bool"),
        ],
        primary_key="url",
        indexes=("last_seen",),
        if_not_exists=True,
    )
    db.create_table(
        "links",
        [
            Column("link_id", "int"),
            Column("src"),
            Column("dst"),
            Column("discovered_at", "float"),
        ],
        primary_key="link_id",
        indexes=("src", "dst"),
        if_not_exists=True,
    )
    db.create_table(
        "visits",
        [
            Column("visit_id", "int"),
            Column("user_id"),
            Column("url"),
            Column("at", "float"),
            Column("session_id", "int"),
            Column("referrer", nullable=True),
            Column("archive_mode"),
            Column("topic_folder", nullable=True),
            Column("topic_confidence", "float", nullable=True),
        ],
        primary_key="visit_id",
        indexes=("user_id", "url", "at", "session_id"),
        if_not_exists=True,
    )
    db.create_table(
        "folders",
        [
            Column("folder_id"),
            Column("owner"),
            Column("name"),
            Column("parent", nullable=True),
            Column("created_at", "float"),
        ],
        primary_key="folder_id",
        indexes=("owner", "parent"),
        if_not_exists=True,
    )
    db.create_table(
        "folder_pages",
        [
            Column("assoc_id", "int"),
            Column("folder_id"),
            Column("url"),
            Column("source"),
            Column("confidence", "float", nullable=True),
            Column("at", "float"),
        ],
        primary_key="assoc_id",
        indexes=("folder_id", "url", "source"),
        if_not_exists=True,
    )
    db.create_table(
        "covisits",
        [
            Column("pair_id"),
            Column("url_a"),
            Column("url_b"),
            Column("count", "float"),
            Column("last_at", "float"),
        ],
        primary_key="pair_id",
        indexes=("url_a", "url_b"),
        if_not_exists=True,
    )
    db.create_table(
        "themes",
        [
            Column("theme_id"),
            Column("community", nullable=True),
            Column("label"),
            Column("parent", nullable=True),
            Column("members", "json", nullable=True),
            Column("weight", "float"),
            Column("created_at", "float"),
        ],
        primary_key="theme_id",
        indexes=("community", "parent"),
        if_not_exists=True,
    )


CATALOG_TABLES = (
    "users", "pages", "links", "visits", "folders", "folder_pages",
    "covisits", "themes",
)
