"""Exception hierarchy for the Memex reproduction.

Every error raised by this package derives from :class:`MemexError`, so
applications can catch one base class at the API boundary.  Subsystems get
their own subtree (storage, mining, protocol, ...) mirroring the package
layout.

Errors that cross the wire also carry a stable machine-readable
``error_code`` and a ``retryable`` hint, so clients dispatch on codes
instead of substring-matching free-text messages.  The code registry and
the exception→code mapping live here — one place — and
:func:`error_payload` renders any exception into the wire fields every
error response carries.
"""

from __future__ import annotations

from typing import Any

# ---------------------------------------------------------------------------
# Wire error codes (the stable client-facing registry)
# ---------------------------------------------------------------------------

CODE_UNKNOWN_SERVLET = "unknown_servlet"
CODE_UNKNOWN_USER = "unknown_user"
CODE_BAD_REQUEST = "bad_request"
CODE_UNSUPPORTED_VERSION = "unsupported_version"
CODE_TIMEOUT = "timeout"
CODE_UNAVAILABLE = "unavailable"
CODE_INTERNAL = "internal"

#: The canonical registry: code -> (retryable, client-facing description).
#: ``scripts/gen_error_table.py`` renders this into the table in
#: ``docs/PROTOCOL.md``; CI fails when the two drift apart.
CODE_REGISTRY: dict[str, tuple[bool, str]] = {
    CODE_BAD_REQUEST: (
        False,
        "The request is malformed: missing or mistyped fields, an illegal "
        "parameter value, or a framing/payload violation. Fix the request "
        "before resending.",
    ),
    CODE_UNSUPPORTED_VERSION: (
        False,
        "The frame's protocol version bits name a version this server "
        "does not speak. Negotiate down (or upgrade the server).",
    ),
    CODE_UNKNOWN_SERVLET: (
        False,
        "The request's `servlet` field names no registered handler.",
    ),
    CODE_UNKNOWN_USER: (
        False,
        "The authenticated `user_id` has no account on this server. "
        "Register the user first.",
    ),
    CODE_TIMEOUT: (
        True,
        "The peer took too long: the server gave up waiting for the rest "
        "of a frame (read timeout), or the client gave up waiting for a "
        "response. The request may be retried on a fresh connection.",
    ),
    CODE_UNAVAILABLE: (
        True,
        "The shard that owns this request is down or restarting (or the "
        "client is backing off from a dead backend). The request may be "
        "retried after a short delay; the supervisor restarts dead "
        "shards automatically.",
    ),
    CODE_INTERNAL: (
        True,
        "The server failed while handling a well-formed request (bug or "
        "resource exhaustion). The request may be retried unchanged.",
    ),
}

#: Which codes a well-behaved client may retry without changing the request.
RETRYABLE_CODES = frozenset(
    code for code, (retryable, _) in CODE_REGISTRY.items() if retryable
)

ERROR_CODES = frozenset(CODE_REGISTRY)


class MemexError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: Default wire code for this exception class; subclasses override.
    code: str = CODE_INTERNAL


# ---------------------------------------------------------------------------
# Storage subsystem
# ---------------------------------------------------------------------------

class StorageError(MemexError):
    """Base class for storage-layer failures."""


class KVStoreError(StorageError):
    """A key-value store operation failed."""


class KeyNotFound(KVStoreError):
    """Lookup of a key that is not present in the store."""


class StoreClosed(KVStoreError):
    """Operation attempted on a store after :meth:`close`."""


class CorruptLog(StorageError):
    """The write-ahead log or data log failed a checksum or framing check."""


class RelationalError(StorageError):
    """Base class for errors from the in-process relational engine."""


class NoSuchTable(RelationalError):
    """Query referenced a table that does not exist."""


class NoSuchColumn(RelationalError):
    """Query referenced a column that does not exist in the table."""


class DuplicateKey(RelationalError):
    """Insert violated a primary-key or unique-index constraint."""


class SchemaError(RelationalError):
    """Row shape or types do not match the table schema."""


class TransactionError(RelationalError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class VersioningError(StorageError):
    """Violation of the loosely-consistent versioning protocol."""


class StaleSnapshot(VersioningError):
    """A consumer tried to read from a snapshot that has been reclaimed."""


# ---------------------------------------------------------------------------
# Text / indexing subsystem
# ---------------------------------------------------------------------------

class TextError(MemexError):
    """Base class for tokenizer / vocabulary / index errors."""


class VocabularyFrozen(TextError):
    """Attempt to add terms to a vocabulary after it was frozen."""


class IndexError_(TextError):
    """Inverted-index failure (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


# ---------------------------------------------------------------------------
# Mining subsystem
# ---------------------------------------------------------------------------

class MiningError(MemexError):
    """Base class for classifier / clustering / theme-discovery errors."""


class NotFitted(MiningError):
    """Model used before :meth:`fit` (or with no training data)."""


class EmptyCorpus(MiningError):
    """An algorithm was handed zero documents."""


# ---------------------------------------------------------------------------
# Client / server subsystem
# ---------------------------------------------------------------------------

class ProtocolError(MemexError):
    """Malformed message or illegal request at the client-server boundary.

    ``code`` defaults to ``bad_request``; framing-level failures that need
    a more specific code (e.g. ``unsupported_version``) pass it explicitly.
    """

    code = CODE_BAD_REQUEST

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            if code not in ERROR_CODES:
                raise ValueError(f"unknown error code {code!r}")
            self.code = code


class AuthError(ProtocolError):
    """Unknown user or bad credentials."""

    code = CODE_UNKNOWN_USER


class ServletError(MemexError):
    """A servlet failed while handling a request."""

    code = CODE_BAD_REQUEST


class DaemonError(MemexError):
    """A background daemon failed irrecoverably."""


# ---------------------------------------------------------------------------
# Folder / bookmark subsystem
# ---------------------------------------------------------------------------

class FolderError(MemexError):
    """Base class for folder-tree manipulation errors."""


class NoSuchFolder(FolderError):
    """A folder path or id did not resolve."""


class FolderCycle(FolderError):
    """A move would have created a cycle in the folder tree."""


class BookmarkFormatError(FolderError):
    """A Netscape/Explorer bookmark file could not be parsed."""


# ---------------------------------------------------------------------------
# Exception → wire fields
# ---------------------------------------------------------------------------

def error_code_for(exc: BaseException) -> str:
    """The stable wire code for *exc* — the single mapping point."""
    if isinstance(exc, MemexError):
        return exc.code
    # Shape errors from handlers poking at request dicts (missing keys,
    # wrong types) are the caller's fault, not a server fault.
    if isinstance(exc, (KeyError, TypeError, ValueError)):
        return CODE_BAD_REQUEST
    return CODE_INTERNAL


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Render *exc* into the fields every error response carries."""
    code = error_code_for(exc)
    return {
        "status": "error",
        "error": f"{type(exc).__name__}: {exc}",
        "error_code": code,
        "retryable": code in RETRYABLE_CODES,
    }
