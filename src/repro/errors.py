"""Exception hierarchy for the Memex reproduction.

Every error raised by this package derives from :class:`MemexError`, so
applications can catch one base class at the API boundary.  Subsystems get
their own subtree (storage, mining, protocol, ...) mirroring the package
layout.
"""

from __future__ import annotations


class MemexError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Storage subsystem
# ---------------------------------------------------------------------------

class StorageError(MemexError):
    """Base class for storage-layer failures."""


class KVStoreError(StorageError):
    """A key-value store operation failed."""


class KeyNotFound(KVStoreError):
    """Lookup of a key that is not present in the store."""


class StoreClosed(KVStoreError):
    """Operation attempted on a store after :meth:`close`."""


class CorruptLog(StorageError):
    """The write-ahead log or data log failed a checksum or framing check."""


class RelationalError(StorageError):
    """Base class for errors from the in-process relational engine."""


class NoSuchTable(RelationalError):
    """Query referenced a table that does not exist."""


class NoSuchColumn(RelationalError):
    """Query referenced a column that does not exist in the table."""


class DuplicateKey(RelationalError):
    """Insert violated a primary-key or unique-index constraint."""


class SchemaError(RelationalError):
    """Row shape or types do not match the table schema."""


class TransactionError(RelationalError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class VersioningError(StorageError):
    """Violation of the loosely-consistent versioning protocol."""


class StaleSnapshot(VersioningError):
    """A consumer tried to read from a snapshot that has been reclaimed."""


# ---------------------------------------------------------------------------
# Text / indexing subsystem
# ---------------------------------------------------------------------------

class TextError(MemexError):
    """Base class for tokenizer / vocabulary / index errors."""


class VocabularyFrozen(TextError):
    """Attempt to add terms to a vocabulary after it was frozen."""


class IndexError_(TextError):
    """Inverted-index failure (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


# ---------------------------------------------------------------------------
# Mining subsystem
# ---------------------------------------------------------------------------

class MiningError(MemexError):
    """Base class for classifier / clustering / theme-discovery errors."""


class NotFitted(MiningError):
    """Model used before :meth:`fit` (or with no training data)."""


class EmptyCorpus(MiningError):
    """An algorithm was handed zero documents."""


# ---------------------------------------------------------------------------
# Client / server subsystem
# ---------------------------------------------------------------------------

class ProtocolError(MemexError):
    """Malformed message or illegal request at the client-server boundary."""


class AuthError(ProtocolError):
    """Unknown user or bad credentials."""


class ServletError(MemexError):
    """A servlet failed while handling a request."""


class DaemonError(MemexError):
    """A background daemon failed irrecoverably."""


# ---------------------------------------------------------------------------
# Folder / bookmark subsystem
# ---------------------------------------------------------------------------

class FolderError(MemexError):
    """Base class for folder-tree manipulation errors."""


class NoSuchFolder(FolderError):
    """A folder path or id did not resolve."""


class FolderCycle(FolderError):
    """A move would have created a cycle in the folder tree."""


class BookmarkFormatError(FolderError):
    """A Netscape/Explorer bookmark file could not be parsed."""
